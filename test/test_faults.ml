(* Fault-injection layer: event semantics in Sync_net, composition with
   adversaries, schedule exploration + shrinking, and the determinism
   contract (identical verdicts at any -j and across same-seed runs). *)

module B = Beyond_nash
module N = B.Sync_net
module F = B.Faults
module X = B.Explore
module FS = Bn_experiments.Fault_sweep

(* Flooding protocol over int ids: state = sorted list of (sender, value)
   receipts tagged with the round they arrived in. *)
let recorder ~n:_ =
  {
    N.init = (fun _ -> []);
    send = (fun ~round ~me _ -> if round = 1 then [ (N.All, me) ] else []);
    recv =
      (fun ~round ~me:_ st inbox ->
        st @ List.map (fun (sender, v) -> (round, sender, v)) inbox);
    output = (fun ~me:_ st -> Some st);
  }

let receipts r me = Option.get r.N.outputs.(me)

(* {1 Event semantics} *)

let test_drop () =
  let faults = F.plan [ F.Drop { round = 1; src = 0; dst = 1 } ] in
  let r = N.run ~faults ~n:3 ~rounds:2 (recorder ~n:3) in
  Alcotest.(check bool) "p1 missed p0" false
    (List.exists (fun (_, s, _) -> s = 0) (receipts r 1));
  Alcotest.(check int) "p2 heard everyone" 3 (List.length (receipts r 2));
  Alcotest.(check int) "one delivery suppressed" 1 r.N.messages_dropped;
  Alcotest.(check int) "sends still counted" 9 r.N.messages_sent

let test_duplicate () =
  let faults = F.plan [ F.Duplicate { round = 1; src = 2; dst = 0 } ] in
  let r = N.run ~faults ~n:3 ~rounds:1 (recorder ~n:3) in
  Alcotest.(check int) "p0 got p2 twice" 2
    (List.length (List.filter (fun (_, s, _) -> s = 2) (receipts r 0)));
  Alcotest.(check int) "p1 unaffected" 3 (List.length (receipts r 1))

let test_delay () =
  let faults = F.plan [ F.Delay { round = 1; src = 0; dst = 1; by = 1 } ] in
  let r = N.run ~faults ~n:3 ~rounds:2 (recorder ~n:3) in
  Alcotest.(check bool) "p0's message reached p1 one round late" true
    (List.mem (2, 0, 0) (receipts r 1) && not (List.mem (1, 0, 0) (receipts r 1)));
  Alcotest.(check int) "nothing lost" 0 r.N.messages_dropped

let test_delay_past_horizon () =
  let faults = F.plan [ F.Delay { round = 1; src = 0; dst = 1; by = 5 } ] in
  let r = N.run ~faults ~n:3 ~rounds:2 (recorder ~n:3) in
  Alcotest.(check bool) "never delivered" false
    (List.exists (fun (_, s, _) -> s = 0) (receipts r 1));
  Alcotest.(check int) "counted as dropped" 1 r.N.messages_dropped

let test_crash_stop () =
  let faults = F.plan [ F.Crash { proc = 2; round = 1 } ] in
  let r = N.run ~faults ~n:3 ~rounds:2 (recorder ~n:3) in
  Alcotest.(check (option reject)) "crashed process has no output" None
    (Option.map ignore r.N.outputs.(2));
  Alcotest.(check bool) "p0 never heard p2" false
    (List.exists (fun (_, s, _) -> s = 2) (receipts r 0))

let test_crash_later_round () =
  (* Crashing at round 2 leaves the round-1 broadcast intact. *)
  let faults = F.plan [ F.Crash { proc = 2; round = 2 } ] in
  let r = N.run ~faults ~n:3 ~rounds:2 (recorder ~n:3) in
  Alcotest.(check bool) "round-1 broadcast delivered" true
    (List.exists (fun (_, s, _) -> s = 2) (receipts r 0));
  Alcotest.(check (option reject)) "but output still suppressed" None
    (Option.map ignore r.N.outputs.(2))

(* Every round, everyone floods; used to see a partition heal. *)
let chatty =
  {
    N.init = (fun _ -> []);
    send = (fun ~round:_ ~me _ -> [ (N.All, me) ]);
    recv =
      (fun ~round ~me:_ st inbox ->
        st @ List.map (fun (sender, _) -> (round, sender)) inbox);
    output = (fun ~me:_ st -> Some st);
  }

let test_partition_heals () =
  let faults =
    F.plan [ F.Partition { from_round = 1; heal_round = 2; groups = [ [ 0; 1 ]; [ 2 ] ] } ]
  in
  let r = N.run ~faults ~n:3 ~rounds:2 chatty in
  let heard = Option.get r.N.outputs.(0) in
  Alcotest.(check bool) "cross-group message lost in round 1" false (List.mem (1, 2) heard);
  Alcotest.(check bool) "delivered after healing" true (List.mem (2, 2) heard);
  Alcotest.(check bool) "same-group unaffected" true (List.mem (1, 1) heard)

let test_corrupt_hook () =
  let faults =
    F.plan
      ~corrupt:(fun ~round:_ ~src:_ ~dst:_ v -> v + 100)
      [ F.Corrupt { round = 1; src = 1; dst = 0 } ]
  in
  let r = N.run ~faults ~n:3 ~rounds:1 (recorder ~n:3) in
  Alcotest.(check bool) "p0 saw the corrupted payload" true (List.mem (1, 1, 101) (receipts r 0));
  Alcotest.(check bool) "p2 saw the original" true (List.mem (1, 1, 1) (receipts r 2))

let test_composes_with_adversary () =
  (* A silent (crashed-from-start) adversary on p1 plus a fault plan
     dropping p0->p2: both effects visible, honest code untouched. *)
  let faults = F.plan [ F.Drop { round = 1; src = 0; dst = 2 } ] in
  let r = N.run ~adversary:(N.silent [ 1 ]) ~faults ~n:3 ~rounds:1 (recorder ~n:3) in
  Alcotest.(check int) "p2 heard only itself" 1 (List.length (receipts r 2));
  Alcotest.(check (option reject)) "corrupt output suppressed" None
    (Option.map ignore r.N.outputs.(1))

let test_no_faults_unchanged () =
  (* The default plan is the identity: same receipts, no drops. *)
  let plain = N.run ~n:4 ~rounds:2 (recorder ~n:4) in
  let idle = N.run ~faults:(F.plan []) ~n:4 ~rounds:2 (recorder ~n:4) in
  Alcotest.(check bool) "outputs identical" true (plain.N.outputs = idle.N.outputs);
  Alcotest.(check int) "no drops" 0 idle.N.messages_dropped

let test_culprits_and_mask () =
  let s =
    [
      F.Drop { round = 1; src = 2; dst = 0 };
      F.Crash { proc = 1; round = 2 };
      F.Partition { from_round = 1; heal_round = 2; groups = [ [ 0 ]; [ 1; 2 ] ] };
      F.Drop { round = 2; src = 2; dst = 1 };
    ]
  in
  Alcotest.(check (list int)) "blames the tampered senders and the crash" [ 1; 2 ]
    (F.culprits s);
  Alcotest.(check (array (option int))) "mask suppresses culprit outputs"
    [| Some 1; None; None |]
    (F.mask s [| Some 1; Some 2; Some 3 |])

(* {1 Below the fault threshold: no schedule may break the protocols} *)

let below_threshold name gen sys =
  QCheck.Test.make ~count:60 ~name
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let schedule = gen (B.Prng.create seed) in
      X.failures sys schedule = [])

let eig_below_crash =
  below_threshold "eig n=4 t=1: agreement+validity under any <=t crash schedule"
    (fun rng -> F.random_schedule rng (F.crash_only ~n:4 ~rounds:2 ~max_crashes:1))
    (FS.eig_system ~n:4 ~t:1 ~values:[| 1; 1; 1; 1 |])

let eig_below_omission =
  below_threshold "eig n=4 t=1: robust to <=t culprits dropping/delaying/duplicating"
    (fun rng -> F.random_schedule rng (F.omission ~n:4 ~rounds:2 ~max_events:4 ~max_culprits:1))
    (FS.eig_system ~n:4 ~t:1 ~values:[| 1; 1; 1; 1 |])

let ds_below =
  below_threshold "dolev-strong n=3 t=1 (PKI): agreement under <=t crash schedules"
    (fun rng -> F.random_schedule rng (F.crash_only ~n:3 ~rounds:2 ~max_crashes:1))
    (FS.dolev_strong_system ~n:3 ~t:1)

let floodset_below =
  below_threshold "floodset n=4 f=1: agreement+validity under <=f crash schedules"
    (fun rng -> F.random_schedule rng (F.crash_only ~n:4 ~rounds:2 ~max_crashes:1))
    (FS.floodset_system ~n:4 ~f:1 ~values:[| 2; 1; 3; 2 |])

let phase_king_below =
  below_threshold "phase-king n=5 t=1: agreement+validity under <=t crash schedules"
    (fun rng -> F.random_schedule rng (F.crash_only ~n:5 ~rounds:4 ~max_crashes:1))
    (FS.phase_king_system ~n:5 ~t:1 ~values:[| 1; 0; 1; 1; 0 |])

(* {1 Above the threshold: the explorer must find and shrink a violation} *)

let n3t1_report ?pool ?(trials = 50) () = FS.explore_eig_n3t1 ?pool ~seed:42 ~trials ()

let test_explorer_finds_n3t1_violation () =
  let report = n3t1_report () in
  Alcotest.(check bool) "violations found" true (report.X.violations <> []);
  let v = List.hd report.X.violations in
  Alcotest.(check bool) "shrunk to <= 3 events" true (List.length v.X.shrunk <= 3);
  Alcotest.(check bool) "shrunk schedule still violates" true (v.X.shrunk_failed <> [])

let test_shrunk_is_locally_minimal () =
  let sys = FS.eig_system ~n:3 ~t:1 ~values:[| 1; 1; 1 |] in
  let v = List.hd (n3t1_report ()).X.violations in
  List.iteri
    (fun i _ ->
      let without = List.filteri (fun j _ -> j <> i) v.X.shrunk in
      Alcotest.(check (list string))
        (Printf.sprintf "removing event %d of the shrunk schedule repairs the run" i)
        [] (X.failures sys without))
    v.X.shrunk

let test_golden_shrunk_transcript () =
  (* Pinned replayable counterexample: the explorer's verdict for seed 42
     must never drift (same schedule, same shrink, same replay line). *)
  let report = n3t1_report () in
  Alcotest.(check string) "golden transcript"
    "explore eig-n3-t1/omission: seed=42 trials=50 violations=33\n\
    \  first violation: trial=0 failed=[validity]\n\
    \  schedule: [crash p0@r1; crash p0@r1; dup r2 0->1]\n\
    \  shrunk (1 event): [crash p0@r1]  failed=[validity]\n\
    \  replay: --explore 50 --seed 42  (trial 0)\n"
    (X.transcript ~name:"eig-n3-t1/omission" report)

(* {1 Determinism: verdicts independent of -j and reproducible by seed} *)

let report_fingerprint r =
  String.concat "|"
    (Printf.sprintf "seed=%d trials=%d" r.X.seed r.X.trials
    :: List.map
         (fun v ->
           Printf.sprintf "%d:%s=>%s[%s]" v.X.trial
             (F.schedule_to_string v.X.schedule)
             (F.schedule_to_string v.X.shrunk)
             (String.concat "," v.X.failed))
         r.X.violations)

let test_explorer_jobs_invariant () =
  let serial = n3t1_report ~pool:(B.Pool.create ~domains:1 ()) () in
  let parallel = n3t1_report ~pool:(B.Pool.create ~domains:4 ()) () in
  Alcotest.(check string) "identical verdicts at -j 1 and -j 4"
    (report_fingerprint serial) (report_fingerprint parallel)

let test_explorer_rerun_invariant () =
  Alcotest.(check string) "identical verdicts across two same-seed runs"
    (report_fingerprint (n3t1_report ())) (report_fingerprint (n3t1_report ()))

let test_random_schedule_deterministic () =
  let gen seed =
    F.random_schedule (B.Prng.create seed) (F.omission ~n:5 ~rounds:3 ~max_events:5 ~max_culprits:2)
  in
  Alcotest.(check string) "same seed, same schedule"
    (F.schedule_to_string (gen 7)) (F.schedule_to_string (gen 7));
  Alcotest.(check bool) "culprit bound respected" true
    (List.length (F.culprits (gen 12345)) <= 2)

let suite =
  [
    Alcotest.test_case "sync: drop" `Quick test_drop;
    Alcotest.test_case "sync: duplicate" `Quick test_duplicate;
    Alcotest.test_case "sync: delay" `Quick test_delay;
    Alcotest.test_case "sync: delay past horizon" `Quick test_delay_past_horizon;
    Alcotest.test_case "sync: crash-stop" `Quick test_crash_stop;
    Alcotest.test_case "sync: crash at round 2" `Quick test_crash_later_round;
    Alcotest.test_case "sync: partition heals" `Quick test_partition_heals;
    Alcotest.test_case "sync: corrupt hook" `Quick test_corrupt_hook;
    Alcotest.test_case "sync: composes with adversary" `Quick test_composes_with_adversary;
    Alcotest.test_case "sync: empty plan is identity" `Quick test_no_faults_unchanged;
    Alcotest.test_case "culprits and mask" `Quick test_culprits_and_mask;
    QCheck_alcotest.to_alcotest eig_below_crash;
    QCheck_alcotest.to_alcotest eig_below_omission;
    QCheck_alcotest.to_alcotest ds_below;
    QCheck_alcotest.to_alcotest floodset_below;
    QCheck_alcotest.to_alcotest phase_king_below;
    Alcotest.test_case "explore: finds n=3t violation, shrinks <=3" `Quick
      test_explorer_finds_n3t1_violation;
    Alcotest.test_case "explore: shrunk schedule locally minimal" `Quick
      test_shrunk_is_locally_minimal;
    Alcotest.test_case "explore: golden shrunk transcript" `Quick test_golden_shrunk_transcript;
    Alcotest.test_case "explore: jobs=1 = jobs=4" `Slow test_explorer_jobs_invariant;
    Alcotest.test_case "explore: rerun same seed" `Quick test_explorer_rerun_invariant;
    Alcotest.test_case "random_schedule deterministic" `Quick test_random_schedule_deterministic;
  ]
