module B = Beyond_nash
module A = B.Async_cheap_talk
module F = B.Feasibility
module Flt = B.Faults
module E = B.Extensive
module Seq = B.Sequential

(* The sweep's cell generator (same shape as Mediator_sweep): sub-Byzantine
   schedules from at most f = k+t culprits. *)
let byz ~n ~f rng =
  Flt.random_schedule rng
    (Flt.byzantine ~n ~rounds:2 ~max_events:((2 * f) + 2) ~max_culprits:f)

let explore ?pool ~seed ~trials ~n ~k ~t () =
  A.explore ?pool ~seed ~trials ~gen:(byz ~n ~f:(k + t)) ~n ~k ~t ~general_type:1 ()

let decisions_list r = Array.to_list r.B.Async_net.decisions

(* {1 Protocol basics} *)

let test_fault_free_decides () =
  (* Fault-free FIFO delivery decodes whenever n > 3(k+t) — all n shares
     arrive, meeting the Berlekamp-Welch bound — in both the implementable
     and the breaks-under-faults regimes. *)
  List.iter
    (fun (n, k, t) ->
      let r = A.run ~n ~k ~t ~general_type:1 () in
      Alcotest.(check (list (option int)))
        (Printf.sprintf "n=%d k=%d t=%d all decode the recommendation" n k t)
        (List.init n (fun _ -> Some 1))
        (decisions_list r);
      Alcotest.(check int) "nothing dropped" 0 r.B.Async_net.dropped)
    [ (5, 1, 0); (4, 1, 0); (9, 1, 1); (8, 1, 1) ]

let test_fault_free_stalls_below_3f () =
  (* n <= 3(k+t): even all n shares are fewer than the 3f+1 the robust
     decoder needs, so every party stalls with no faults at all. *)
  List.iter
    (fun (n, k, t) ->
      let r = A.run ~n ~k ~t ~general_type:1 () in
      Alcotest.(check (list (option int)))
        (Printf.sprintf "n=%d k=%d t=%d stalls fault-free" n k t)
        (List.init n (fun _ -> None))
        (decisions_list r))
    [ (3, 1, 0); (6, 1, 1) ]

let test_process_validation () =
  Alcotest.check_raises "k+t >= n rejected"
    (Invalid_argument "Async_cheap_talk.process: need n >= 2 and k + t < n (sharing degree bound)")
    (fun () -> ignore (A.process ~n:3 ~k:2 ~t:1 ~general_type:0))

let decode_iff_classify_async =
  QCheck.Test.make ~count:200
    ~name:"async mediator: decode_guaranteed iff classify_async implementable"
    QCheck.(triple (int_range 1 24) (int_range 1 3) (int_range 0 3))
    (fun (n, k, t) ->
      let f = A.fault_bound ~k ~t in
      A.decode_guaranteed ~n ~f = (F.classify_async ~n ~k ~t = F.Async_implementable))

let test_stall_witness_size () =
  (* The minimal silencing witness: n - 3(k+t) parties, clamped at 0 in the
     fault-free-impossible regime. *)
  List.iter
    (fun ((n, k, t), expected) ->
      Alcotest.(check int)
        (Printf.sprintf "witness size at n=%d k=%d t=%d" n k t)
        expected
        (A.stall_witness_size ~n ~k ~t))
    [ ((4, 1, 0), 1); ((3, 1, 0), 0); ((8, 1, 1), 2); ((7, 1, 1), 1); ((6, 1, 1), 0) ]

let test_sanitize_drops_dealer_events () =
  let s =
    [
      Flt.Crash { proc = 0; round = 1 };
      Flt.Drop { round = 1; src = 0; dst = 2 };
      Flt.Drop { round = 1; src = 2; dst = 0 };
      Flt.Delay { round = 1; src = 1; dst = 3; by = 2 };
    ]
  in
  (* Only events *blaming* the dealer go: its crash and tampering with its
     sends. A drop toward the dealer blames the sender and stays. *)
  Alcotest.(check int) "dealer-blaming events removed" 2 (List.length (A.sanitize s));
  Alcotest.(check bool) "dealer not a culprit afterwards" false
    (List.mem 0 (Flt.culprits (A.sanitize s)))

(* {1 Scheduler fairness (satellite 3)} *)

let test_async_scheduler_eventual_delivery () =
  (* Delay and Partition events only starve; once nothing else is pending
     the starved messages flow, so a no-loss schedule cannot prevent
     decoding in the implementable regime. *)
  let schedules =
    [
      [ Flt.Delay { round = 1; src = 1; dst = 2; by = 3 } ];
      [ Flt.Partition { from_round = 1; heal_round = 2; groups = [ [ 0; 1; 2 ]; [ 3; 4 ] ] } ];
      [
        Flt.Delay { round = 1; src = 2; dst = 0; by = 1 };
        Flt.Delay { round = 2; src = 3; dst = 4; by = 2 };
        Flt.Partition { from_round = 1; heal_round = 3; groups = [ [ 0; 2; 4 ]; [ 1; 3 ] ] };
      ];
    ]
  in
  List.iter
    (fun sched ->
      let r = A.run ~scheduler:(Flt.async_scheduler sched) ~n:5 ~k:1 ~t:0 ~general_type:1 () in
      Alcotest.(check (list (option int)))
        "starvation alone cannot stall n > 4(k+t)"
        (List.init 5 (fun _ -> Some 1))
        (decisions_list r);
      Alcotest.(check int) "nothing lost, only reordered" 0 r.B.Async_net.dropped)
    schedules

let fairness_property =
  QCheck.Test.make ~count:50
    ~name:"async mediator: random delay/partition schedules still decode (n=5,k=1,t=0)"
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let gen =
        { (Flt.omission ~n:5 ~rounds:2 ~max_events:4 ~max_culprits:4) with
          Flt.kinds = [ Flt.KDelay; Flt.KPartition ]
        }
      in
      let sched = Flt.random_schedule (B.Prng.create seed) gen in
      let r = A.run ~scheduler:(Flt.async_scheduler sched) ~n:5 ~k:1 ~t:0 ~general_type:1 () in
      decisions_list r = List.init 5 (fun _ -> Some 1) && r.B.Async_net.dropped = 0)

let test_async_plan_composes_with_scheduler () =
  (* Drop/Duplicate/Corrupt filters riding on top of the adversarial
     scheduler: one faulty link of each kind is within the f = 1 budget, so
     n = 5 still decodes — and the once-per-link duplicate memo means the
     run terminates instead of ping-ponging copies forever. *)
  let sched =
    [
      Flt.Drop { round = 1; src = 2; dst = 3 };
      Flt.Duplicate { round = 1; src = 2; dst = 4 };
      Flt.Corrupt { round = 2; src = 2; dst = 1 };
      Flt.Delay { round = 1; src = 4; dst = 1; by = 2 };
    ]
  in
  let r = A.run_schedule ~n:5 ~k:1 ~t:0 ~general_type:1 sched in
  Alcotest.(check (list (option int)))
    "one faulty sender is absorbed"
    (List.init 5 (fun _ -> Some 1))
    (decisions_list r);
  Alcotest.(check bool) "the drop was applied" true (r.B.Async_net.dropped > 0);
  (* 5 shares + 25 relays + one duplicate: far below max_steps, so the
     once-per-link memo did stop the duplicate from ping-ponging. *)
  Alcotest.(check bool) "the duplicate did not loop" true (r.B.Async_net.steps < 100)

let test_empty_schedule_is_fault_free () =
  let a = A.run_schedule ~n:5 ~k:1 ~t:0 ~general_type:1 [] in
  let b = A.run ~n:5 ~k:1 ~t:0 ~general_type:1 () in
  Alcotest.(check (list (option int)))
    "run_schedule [] = fault-free run" (decisions_list b) (decisions_list a);
  Alcotest.(check int) "same steps" b.B.Async_net.steps a.B.Async_net.steps

(* {1 Explore determinism (satellite 3)} *)

let test_explore_deterministic_across_jobs () =
  let serial = explore ~seed:16 ~trials:30 ~n:4 ~k:1 ~t:0 () in
  let pool = B.Pool.create ~domains:4 () in
  let parallel = explore ~pool ~seed:16 ~trials:30 ~n:4 ~k:1 ~t:0 () in
  let rerun = explore ~seed:16 ~trials:30 ~n:4 ~k:1 ~t:0 () in
  Alcotest.(check bool) "report identical at -j1 and -j4" true (serial = parallel);
  Alcotest.(check bool) "report identical across reruns" true (serial = rerun);
  Alcotest.(check string) "transcript byte-identical"
    (B.Explore.transcript ~name:"cell" serial)
    (B.Explore.transcript ~name:"cell" parallel)

let explore_determinism_property =
  QCheck.Test.make ~count:10
    ~name:"async mediator: explore reports bit-identical for any -j and seed"
    QCheck.(int_range 0 1000)
    (fun seed ->
      let serial = explore ~seed ~trials:10 ~n:4 ~k:1 ~t:0 () in
      let pool = B.Pool.create ~domains:4 () in
      let parallel = explore ~pool ~seed ~trials:10 ~n:4 ~k:1 ~t:0 () in
      serial = parallel)

(* {1 Regime boundaries: golden transcripts (tentpole)} *)

(* Pinned Explore transcripts for every impossibility cell of the E16 grid,
   at the E16 seed. Breaks-under-faults cells shrink to the predicted
   silencing witness; breaks-fault-free cells shrink to the empty
   schedule. These are replayable: `--explore 50 --seed 16`. *)

let golden ~name ~n ~k ~t expected () =
  let report = explore ~seed:16 ~trials:50 ~n ~k ~t () in
  Alcotest.(check string) "pinned transcript" expected
    (B.Explore.transcript ~name report)

let test_golden_n4_breaks_under_faults =
  golden ~name:"n=4 k=1 t=0" ~n:4 ~k:1 ~t:0
    "explore n=4 k=1 t=0: seed=16 trials=50 violations=21\n\
    \  first violation: trial=0 failed=[totality]\n\
    \  schedule: [crash p1@r2]\n\
    \  shrunk (1 event): [crash p1@r2]  failed=[totality]\n\
    \  replay: --explore 50 --seed 16  (trial 0)\n"

let test_golden_n3_breaks_fault_free =
  golden ~name:"n=3 k=1 t=0" ~n:3 ~k:1 ~t:0
    "explore n=3 k=1 t=0: seed=16 trials=50 violations=50\n\
    \  first violation: trial=0 failed=[totality]\n\
    \  schedule: [delay r1 2->1 +2; delay r2 2->2 +1; corrupt r2 2->0]\n\
    \  shrunk (0 events): []  failed=[totality]\n\
    \  replay: --explore 50 --seed 16  (trial 0)\n"

let test_golden_n8_breaks_under_faults =
  golden ~name:"n=8 k=1 t=1" ~n:8 ~k:1 ~t:1
    "explore n=8 k=1 t=1: seed=16 trials=50 violations=5\n\
    \  first violation: trial=5 failed=[totality]\n\
    \  schedule: [drop r2 1->3; drop r1 3->2; drop r1 1->7; crash p3@r2]\n\
    \  shrunk (2 events): [drop r1 1->7; crash p3@r2]  failed=[totality]\n\
    \  replay: --explore 50 --seed 16  (trial 5)\n"

let test_golden_n6_breaks_fault_free =
  golden ~name:"n=6 k=1 t=1" ~n:6 ~k:1 ~t:1
    "explore n=6 k=1 t=1: seed=16 trials=50 violations=50\n\
    \  first violation: trial=0 failed=[totality]\n\
    \  schedule: [dup r1 1->3; crash p1@r1; corrupt r2 1->2]\n\
    \  shrunk (0 events): []  failed=[totality]\n\
    \  replay: --explore 50 --seed 16  (trial 0)\n"

(* {1 Regime boundaries: possibility and local minimality} *)

let test_possibility_cells_robust () =
  (* The acceptance bar for the possibility side: >= 100 seeded schedules,
     zero violations, at -j1 and -j4. *)
  let pool = B.Pool.create ~domains:4 () in
  List.iter
    (fun (n, k, t) ->
      let serial = explore ~seed:16 ~trials:100 ~n ~k ~t () in
      let parallel = explore ~pool ~seed:16 ~trials:100 ~n ~k ~t () in
      Alcotest.(check int)
        (Printf.sprintf "n=%d k=%d t=%d robust across 100 schedules (-j1)" n k t)
        0
        (List.length serial.B.Explore.violations);
      Alcotest.(check bool) "and bit-identical at -j4" true (serial = parallel))
    [ (5, 1, 0); (9, 1, 1) ]

let test_shrunk_witnesses_locally_minimal () =
  (* Every shrunk counterexample still fails, matches the predicted witness
     size at its minimum, and is 1-minimal: removing any single event
     repairs the run. *)
  List.iter
    (fun (n, k, t) ->
      let report = explore ~seed:16 ~trials:50 ~n ~k ~t () in
      let sys = A.system ~n ~k ~t ~general_type:1 in
      Alcotest.(check bool) "found violations" true (report.B.Explore.violations <> []);
      Alcotest.(check int)
        (Printf.sprintf "n=%d k=%d t=%d minimal witness has the predicted size" n k t)
        (A.stall_witness_size ~n ~k ~t)
        (B.Explore.min_shrunk_size report);
      List.iter
        (fun v ->
          Alcotest.(check bool) "shrunk still fails" true (v.B.Explore.shrunk_failed <> []);
          List.iteri
            (fun i _ ->
              let without = List.filteri (fun j _ -> j <> i) v.B.Explore.shrunk in
              Alcotest.(check (list string))
                (Printf.sprintf "dropping event %d of trial %d repairs the run" i
                   v.B.Explore.trial)
                [] (B.Explore.failures sys without))
            v.B.Explore.shrunk)
        report.B.Explore.violations)
    [ (4, 1, 0); (3, 1, 0); (8, 1, 1); (6, 1, 1) ]

(* {1 Sequential equilibrium (both sides of two thresholds)} *)

let test_punishment_credible_above_2k2t () =
  (* n > 2k+2t: the majority makes punishing personally worthwhile, so
     (obey, punish) survives the sequential check. *)
  List.iter
    (fun (n, k, t) ->
      let game, profile = Seq.punishment_game ~n ~k ~t in
      Alcotest.(check bool) "Nash" true (E.is_nash game profile);
      Alcotest.(check bool)
        (Printf.sprintf "sequential at n=%d k=%d t=%d" n k t)
        true
        (Seq.is_sequentially_k_resilient game profile ~k))
    [ (5, 1, 1); (7, 2, 1) ]

let test_punishment_non_credible_below_2k2t () =
  (* n <= 2k+2t: still Nash — the punishment node is off-path — but the
     threat is not credible, and the sequential check pins the deviation at
     the punisher's information set. *)
  List.iter
    (fun (n, k, t) ->
      let game, profile = Seq.punishment_game ~n ~k ~t in
      Alcotest.(check bool) "still Nash (threat is off-path)" true (E.is_nash game profile);
      match Seq.check game profile ~k with
      | None -> Alcotest.failf "expected a witness at n=%d k=%d t=%d" n k t
      | Some w ->
        Alcotest.(check string) "deviation at the punisher's info set" "react" w.Seq.info;
        Alcotest.(check (list int)) "the punisher deviates alone" [ 1 ] w.Seq.coalition;
        List.iter
          (fun (_, g) -> Alcotest.(check bool) "strict gain" true (g > 0.0))
          w.Seq.gains)
    [ (4, 1, 1); (6, 2, 1) ]

let test_stall_game_tracks_async_threshold () =
  (* The stall game flips exactly with classify_async: above n = 4(k+t)
     withholding is wasteful; at or below, the coalition proxy gains by
     stalling and (relay, abort) is not sequentially rational. *)
  List.iter
    (fun (n, k, t) ->
      let game, profile = Seq.async_stall_game ~n ~k ~t in
      let expected = F.classify_async ~n ~k ~t = F.Async_implementable in
      Alcotest.(check bool)
        (Printf.sprintf "sequential iff implementable at n=%d k=%d t=%d" n k t)
        expected
        (Seq.is_sequentially_k_resilient game profile ~k);
      if not expected then
        match Seq.check game profile ~k with
        | Some w -> Alcotest.(check string) "witness at the relay choice" "relay?" w.Seq.info
        | None -> Alcotest.fail "witness expected")
    [ (5, 1, 0); (4, 1, 0); (9, 1, 1); (8, 1, 1) ]

let test_sequential_check_validation () =
  let game, profile = Seq.punishment_game ~n:5 ~k:1 ~t:1 in
  Alcotest.check_raises "k = 0 rejected" (Invalid_argument "Sequential.check: need k >= 1")
    (fun () -> ignore (Seq.check game profile ~k:0))

let test_sweep_sequential_rows_all_match () =
  (* The E16 cross-check table: on every grid cell both canned games agree
     with their classification. *)
  List.iter
    (fun c ->
      let _, stall_ok, _, punish_ok = Bn_experiments.Mediator_sweep.sequential_rows c in
      Alcotest.(check bool)
        (Bn_experiments.Mediator_sweep.cell_name c ^ ": stall game matches classify_async")
        true stall_ok;
      Alcotest.(check bool)
        (Bn_experiments.Mediator_sweep.cell_name c ^ ": punishment game matches 2k+2t")
        true punish_ok)
    Bn_experiments.Mediator_sweep.cells

let suite =
  [
    Alcotest.test_case "fault-free decides above 3(k+t)" `Quick test_fault_free_decides;
    Alcotest.test_case "fault-free stalls at/below 3(k+t)" `Quick test_fault_free_stalls_below_3f;
    Alcotest.test_case "process validation" `Quick test_process_validation;
    QCheck_alcotest.to_alcotest decode_iff_classify_async;
    Alcotest.test_case "stall witness size" `Quick test_stall_witness_size;
    Alcotest.test_case "sanitize drops dealer events" `Quick test_sanitize_drops_dealer_events;
    Alcotest.test_case "scheduler fairness: eventual delivery" `Quick
      test_async_scheduler_eventual_delivery;
    QCheck_alcotest.to_alcotest fairness_property;
    Alcotest.test_case "fault plan composes with adversarial scheduler" `Quick
      test_async_plan_composes_with_scheduler;
    Alcotest.test_case "empty schedule = fault-free" `Quick test_empty_schedule_is_fault_free;
    Alcotest.test_case "explore deterministic across -j" `Quick
      test_explore_deterministic_across_jobs;
    QCheck_alcotest.to_alcotest explore_determinism_property;
    Alcotest.test_case "golden: n=4 breaks under faults" `Quick test_golden_n4_breaks_under_faults;
    Alcotest.test_case "golden: n=3 breaks fault-free" `Quick test_golden_n3_breaks_fault_free;
    Alcotest.test_case "golden: n=8 breaks under faults" `Quick test_golden_n8_breaks_under_faults;
    Alcotest.test_case "golden: n=6 breaks fault-free" `Quick test_golden_n6_breaks_fault_free;
    Alcotest.test_case "possibility cells robust (100 schedules, -j1/-j4)" `Slow
      test_possibility_cells_robust;
    Alcotest.test_case "shrunk witnesses locally minimal" `Slow
      test_shrunk_witnesses_locally_minimal;
    Alcotest.test_case "punishment credible above 2k+2t" `Quick
      test_punishment_credible_above_2k2t;
    Alcotest.test_case "punishment non-credible below 2k+2t" `Quick
      test_punishment_non_credible_below_2k2t;
    Alcotest.test_case "stall game tracks the async threshold" `Quick
      test_stall_game_tracks_async_threshold;
    Alcotest.test_case "sequential check validation" `Quick test_sequential_check_validation;
    Alcotest.test_case "sweep: sequential rows all match" `Quick
      test_sweep_sequential_rows_all_match;
  ]
