(* Observability layer (Bn_obs): the determinism contract — Det counters
   are identical for any domain budget and across same-seed reruns — plus
   the sharded counter engine, span well-nesting, and exporter validity.
   Everything here drives real workloads (experiments, the fault-schedule
   explorer) rather than synthetic counter churn, so the suite also pins
   the instrumentation points against accidental moves onto
   schedule-dependent paths. *)

[@@@lint.allow "P002"
  "the suite spawns a raw domain on purpose: it asserts the DLS counter shards sum correctly \
   for domains Pool did not create"]

module B = Beyond_nash
module FS = Bn_experiments.Fault_sweep

let det_snapshot () = B.Obs.counters_snapshot ~kind:B.Obs.Det ()

let snapshot_t = Alcotest.(list (pair string int))

(* {1 Counter engine} *)

let test_registry () =
  let c = B.Obs.counter ~kind:B.Obs.Volatile "test.obs.registry" in
  let c' = B.Obs.counter ~kind:B.Obs.Volatile "test.obs.registry" in
  let before = B.Obs.value c in
  B.Obs.add c 5;
  B.Obs.incr c';
  Alcotest.(check int) "find-or-create by name shares the cell" (before + 6) (B.Obs.value c);
  B.Obs.add c 0;
  Alcotest.(check int) "add 0 is a no-op" (before + 6) (B.Obs.value c)

let test_add2 () =
  let a = B.Obs.counter ~kind:B.Obs.Volatile "test.obs.add2_a" in
  let b = B.Obs.counter ~kind:B.Obs.Volatile "test.obs.add2_b" in
  let va = B.Obs.value a and vb = B.Obs.value b in
  B.Obs.add2 a 3 b 4;
  (* From a fresh domain too, so the flush exercises the grow path of a
     shard that has never seen these counter ids. *)
  Domain.join (Domain.spawn (fun () -> B.Obs.add2 a 10 b 20));
  Alcotest.(check int) "add2 first cell" (va + 13) (B.Obs.value a);
  Alcotest.(check int) "add2 second cell" (vb + 24) (B.Obs.value b)

let test_gauge () =
  let g = B.Obs.gauge "test.obs.gauge" in
  B.Obs.set_gauge g 3;
  B.Obs.max_gauge g 7;
  B.Obs.max_gauge g 5;
  Alcotest.(check int) "max_gauge keeps the maximum" 7 (B.Obs.gauge_value g)

let prop_parallel_sum =
  QCheck.Test.make ~name:"sharded counter sums exactly under Pool" ~count:30
    QCheck.(list_of_size Gen.(1 -- 50) small_nat)
    (fun xs ->
      let c = B.Obs.counter ~kind:B.Obs.Volatile "test.obs.parallel_sum" in
      let before = B.Obs.value c in
      let pool = B.Pool.create ~domains:4 () in
      ignore
        (B.Pool.map_array pool
           (fun x ->
             B.Obs.add c x;
             x)
           (Array.of_list xs));
      B.Obs.value c - before = List.fold_left ( + ) 0 xs)

(* {1 Det counters: identical for any -j and across reruns} *)

(* E1-E3 exercise Robust under parallel sweeps, the explorer config
   exercises Sync_net + Faults + Explore (now over the work-stealing map:
   its steal counter is Volatile, so it must NOT surface here), and the
   learning runs exercise the incremental-EU cache counters; only counters
   classified Det may appear with nonzero values in this comparison. *)
let det_workload ~jobs () =
  B.Obs.reset ();
  List.iter
    (fun id ->
      match Bn_experiments.Experiments.render ~jobs id with
      | Some _ -> ()
      | None -> Alcotest.failf "unknown experiment %s" id)
    [ "E1"; "E2"; "E3" ];
  let pool = B.Pool.create ~domains:jobs () in
  ignore (FS.explore_eig_n3t1 ~pool ~seed:42 ~trials:20 ());
  ignore (B.Learning.replicator ~rounds:100 B.Games.matching_pennies);
  ignore (B.Learning.fictitious_play ~rounds:100 B.Games.prisoners_dilemma);
  det_snapshot ()

let test_det_jobs_invariant () =
  let s1 = det_workload ~jobs:1 () in
  let s4 = det_workload ~jobs:4 () in
  Alcotest.check snapshot_t "Det counters identical at jobs=1 and jobs=4" s1 s4;
  let s1' = det_workload ~jobs:1 () in
  Alcotest.check snapshot_t "Det counters identical across reruns" s1 s1';
  let get name s = try List.assoc name s with Not_found -> 0 in
  Alcotest.(check bool) "incremental-EU recomputes surfaced as Det" true
    (get "learning.eu_recomputes" s1 > 0);
  Alcotest.(check bool) "incremental-EU skips surfaced as Det" true
    (get "learning.eu_skips" s1 > 0)

(* The SoA engines count steps, requests, satisfactions, flushes and
   cross-shard events as Det: the batched exchange makes all of them pure
   functions of (seed, shards, steps), never of the domain budget. *)
let soa_workload ~jobs () =
  B.Obs.reset ();
  let params = { (B.Scrip.default_params ~n:2_000) with B.Scrip.rounds = 0 } in
  ignore
    (B.Scrip_soa.run ~jobs ~shards:16 ~seed:42 ~steps:30 ~params
       ~kind_of:(fun i -> if i mod 9 = 0 then B.Scrip.Hoarder else B.Scrip.Standard 5)
       ~money_per_agent:2.0 ());
  ignore
    (B.Gnutella_soa.simulate ~jobs ~shards:16 (B.Prng.create 42)
       (B.Gnutella.default_params ~users:2_000));
  det_snapshot ()

let test_soa_det_counters () =
  let s1 = soa_workload ~jobs:1 () in
  let s4 = soa_workload ~jobs:4 () in
  Alcotest.check snapshot_t "SoA Det counters identical at jobs=1 and jobs=4" s1 s4;
  let s1' = soa_workload ~jobs:1 () in
  Alcotest.check snapshot_t "SoA Det counters identical across reruns" s1 s1';
  let get name = try List.assoc name s1 with Not_found -> 0 in
  Alcotest.(check int) "scrip_soa.steps" 30 (get "scrip_soa.steps");
  Alcotest.(check int) "scrip_soa.flushes" 30 (get "scrip_soa.flushes");
  Alcotest.(check bool) "scrip_soa.requests ticked" true (get "scrip_soa.requests" > 0);
  Alcotest.(check bool) "scrip_soa cross-shard events ticked" true
    (get "scrip_soa.cross_shard_events" > 0);
  Alcotest.(check int) "gnutella_soa.queries" 100_000 (get "gnutella_soa.queries");
  Alcotest.(check bool) "gnutella_soa cross-shard events ticked" true
    (get "gnutella_soa.cross_shard_events" > 0)

(* Stealing moves work between domains at the scheduler's whim, so the
   pool.steals counter is Volatile by construction: it must stay out of
   the Det snapshot (or the jobs-invariance above would be violated), while
   still being observable on the volatile side. *)
let test_steal_counter_volatile () =
  B.Obs.reset ();
  let pool = B.Pool.create ~domains:4 () in
  let busy x =
    let acc = ref x in
    for i = 1 to if x = 0 then 100_000 else 10 do
      acc := (!acc * 31) lxor i
    done;
    !acc
  in
  ignore (B.Pool.map_array_steal pool busy (Array.init 64 Fun.id));
  Alcotest.(check bool) "pool.steals absent from Det snapshot" true
    (not (List.mem_assoc "pool.steals" (det_snapshot ())));
  Alcotest.(check bool) "pool.steals present in Volatile snapshot" true
    (List.mem_assoc "pool.steals" (B.Obs.counters_snapshot ~kind:B.Obs.Volatile ()))

(* Pinned golden snapshot for the fixed-seed explorer run (serial). A
   change here means either the explorer's behaviour changed (update
   EXPECTED alongside the transcript goldens) or an instrumentation point
   moved — if the new value varies with -j, the counter is misclassified
   and must become Volatile. *)
let test_golden_explore_snapshot () =
  B.Obs.reset ();
  ignore (FS.explore_eig_n3t1 ~seed:42 ~trials:20 ());
  let got = List.filter (fun (_, v) -> v > 0) (det_snapshot ()) in
  let expected =
    [
      ("explore.schedules", 20);
      ("explore.shrink_evals", 44);
      ("explore.violations", 14);
      ("faults.link_events_applied", 69);
      ("sync_net.messages_dropped", 46);
      ("sync_net.messages_sent", 1281);
      ("sync_net.rounds", 156);
      ("sync_net.runs", 78);
    ]
  in
  Alcotest.check snapshot_t "golden Det snapshot (explore-eig-n3-t1, seed 42)" expected got

(* {1 Spans} *)

let collect_events f =
  B.Obs.reset ();
  B.Obs.set_tracing true;
  Fun.protect ~finally:(fun () -> B.Obs.set_tracing false) f;
  B.Obs.events ()

(* Per domain, every End must name the innermost open Begin and no span
   may stay open. [events] returns per-domain chronological streams, so
   filtering by tid preserves each domain's program order. *)
let check_well_nested evs =
  let stacks : (int, string list) Hashtbl.t = Hashtbl.create 8 in
  let begins = ref 0 in
  List.iter
    (fun (e : B.Obs.event) ->
      let stack = Option.value ~default:[] (Hashtbl.find_opt stacks e.tid) in
      match e.ph with
      | B.Obs.Begin ->
        incr begins;
        Hashtbl.replace stacks e.tid (e.ename :: stack)
      | B.Obs.End -> (
        match stack with
        | top :: rest ->
          Alcotest.(check string) "End names the innermost open span" top e.ename;
          Hashtbl.replace stacks e.tid rest
        | [] -> Alcotest.fail "End event without a matching Begin")
      | B.Obs.Instant -> ())
    evs;
  List.iter
    (fun (tid, stack) ->
      Alcotest.(check int) (Printf.sprintf "domain %d has no open spans" tid) 0
        (List.length stack))
    (B.Tbl.sorted_bindings stacks);
  !begins

let test_span_nesting_real_workload () =
  let evs =
    collect_events (fun () ->
        (match Bn_experiments.Experiments.render ~jobs:4 "E1" with
        | Some _ -> ()
        | None -> Alcotest.fail "unknown experiment E1");
        ignore (FS.explore_eig_n3t1 ~seed:42 ~trials:5 ()))
  in
  let begins = check_well_nested evs in
  Alcotest.(check bool) "recorded a non-trivial number of spans" true (begins > 10);
  Alcotest.(check int) "span_count matches Begin events" begins (B.Obs.span_count ());
  let names =
    List.filter_map
      (fun (e : B.Obs.event) -> if e.ph = B.Obs.Begin then Some e.ename else None)
      evs
  in
  List.iter
    (fun required ->
      Alcotest.(check bool)
        (Printf.sprintf "trace contains a %S span" required)
        true (List.mem required names))
    [ "exp.E1"; "pool.chunk"; "robust.search"; "sync_net.run"; "sync_net.round"; "explore.trial" ]

let test_spans_off_by_default () =
  B.Obs.reset ();
  ignore (FS.explore_eig_n3t1 ~seed:42 ~trials:2 ());
  Alcotest.(check int) "no spans recorded with tracing off" 0 (B.Obs.span_count ());
  Alcotest.(check int) "no events recorded with tracing off" 0 (List.length (B.Obs.events ()))

let prop_span_nesting =
  QCheck.Test.make ~name:"random span shapes are well-nested" ~count:20
    QCheck.(small_list (int_bound 4))
    (fun shape ->
      let evs =
        collect_events (fun () ->
            List.iter
              (fun depth ->
                let rec nest d =
                  if d > 0 then B.Obs.span "test.obs.nest" (fun () -> nest (d - 1))
                in
                nest depth)
              shape)
      in
      check_well_nested evs = List.fold_left ( + ) 0 shape)

(* {1 Exporters} *)

let test_exporters_valid_json () =
  B.Obs.set_tracing true;
  Fun.protect
    ~finally:(fun () -> B.Obs.set_tracing false)
    (fun () ->
      B.Obs.reset ();
      let h = B.Obs.hist "test.obs.hist" in
      List.iter (B.Obs.observe h) [ 0; 1; 2; 3; 1000; 1000000 ];
      ignore (FS.explore_eig_n3t1 ~seed:1 ~trials:5 ()));
  Alcotest.(check bool) "chrome trace is valid JSON" true
    (B.Obs.Json.validate (B.Obs.Export.chrome_trace ()));
  Alcotest.(check bool) "metrics snapshot is valid JSON" true
    (B.Obs.Json.validate (B.Obs.Export.metrics_json ()));
  B.Obs.reset ();
  Alcotest.(check bool) "empty chrome trace is valid JSON" true
    (B.Obs.Json.validate (B.Obs.Export.chrome_trace ()));
  Alcotest.(check bool) "empty metrics snapshot is valid JSON" true
    (B.Obs.Json.validate (B.Obs.Export.metrics_json ()))

let test_json_validator () =
  let ok = [ "{}"; "[]"; "null"; "-12.5e-3"; {|{"a":[1,2,{"b":"x\né"}],"c":false}|} ] in
  let bad = [ ""; "{"; "[1,]"; {|{"a":}|}; {|"unterminated|}; "{} x"; "01"; "+1"; "nul" ] in
  List.iter
    (fun s -> Alcotest.(check bool) (Printf.sprintf "accepts %s" s) true (B.Obs.Json.validate s))
    ok;
  List.iter
    (fun s -> Alcotest.(check bool) (Printf.sprintf "rejects %s" s) false (B.Obs.Json.validate s))
    bad

let prop_escape_valid =
  QCheck.Test.make ~name:"json_escape always yields a valid JSON string" ~count:200
    QCheck.string
    (fun s -> B.Obs.Json.validate ("\"" ^ B.Obs.json_escape s ^ "\""))

let suite =
  [
    Alcotest.test_case "counter registry" `Quick test_registry;
    Alcotest.test_case "add2 batched update" `Quick test_add2;
    Alcotest.test_case "gauge max" `Quick test_gauge;
    QCheck_alcotest.to_alcotest prop_parallel_sum;
    Alcotest.test_case "Det counters: jobs=1 = jobs=4 (E1-E3 + explore)" `Slow
      test_det_jobs_invariant;
    Alcotest.test_case "golden Det snapshot (fixed-seed explore)" `Quick
      test_golden_explore_snapshot;
    Alcotest.test_case "Det counters: SoA engines (jobs + rerun invariant)" `Slow
      test_soa_det_counters;
    Alcotest.test_case "pool.steals is Volatile" `Quick test_steal_counter_volatile;
    Alcotest.test_case "span nesting on a real workload" `Slow test_span_nesting_real_workload;
    Alcotest.test_case "tracing off records nothing" `Quick test_spans_off_by_default;
    QCheck_alcotest.to_alcotest prop_span_nesting;
    Alcotest.test_case "exporters emit valid JSON" `Quick test_exporters_valid_json;
    Alcotest.test_case "JSON validator accept/reject" `Quick test_json_validator;
    QCheck_alcotest.to_alcotest prop_escape_valid;
  ]
