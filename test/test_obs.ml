(* Observability layer (Bn_obs): the determinism contract — Det counters
   are identical for any domain budget and across same-seed reruns — plus
   the sharded counter engine, span well-nesting, and exporter validity.
   Everything here drives real workloads (experiments, the fault-schedule
   explorer) rather than synthetic counter churn, so the suite also pins
   the instrumentation points against accidental moves onto
   schedule-dependent paths. *)

[@@@lint.allow "P002"
  "the suite spawns a raw domain on purpose: it asserts the DLS counter shards sum correctly \
   for domains Pool did not create"]

module B = Beyond_nash
module FS = Bn_experiments.Fault_sweep

let det_snapshot () = B.Obs.counters_snapshot ~kind:B.Obs.Det ()

let snapshot_t = Alcotest.(list (pair string int))

(* {1 Counter engine} *)

let test_registry () =
  let c = B.Obs.counter ~kind:B.Obs.Volatile "test.obs.registry" in
  let c' = B.Obs.counter ~kind:B.Obs.Volatile "test.obs.registry" in
  let before = B.Obs.value c in
  B.Obs.add c 5;
  B.Obs.incr c';
  Alcotest.(check int) "find-or-create by name shares the cell" (before + 6) (B.Obs.value c);
  B.Obs.add c 0;
  Alcotest.(check int) "add 0 is a no-op" (before + 6) (B.Obs.value c)

let test_add2 () =
  let a = B.Obs.counter ~kind:B.Obs.Volatile "test.obs.add2_a" in
  let b = B.Obs.counter ~kind:B.Obs.Volatile "test.obs.add2_b" in
  let va = B.Obs.value a and vb = B.Obs.value b in
  B.Obs.add2 a 3 b 4;
  (* From a fresh domain too, so the flush exercises the grow path of a
     shard that has never seen these counter ids. *)
  Domain.join (Domain.spawn (fun () -> B.Obs.add2 a 10 b 20));
  Alcotest.(check int) "add2 first cell" (va + 13) (B.Obs.value a);
  Alcotest.(check int) "add2 second cell" (vb + 24) (B.Obs.value b)

let test_gauge () =
  let g = B.Obs.gauge "test.obs.gauge" in
  B.Obs.set_gauge g 3;
  B.Obs.max_gauge g 7;
  B.Obs.max_gauge g 5;
  Alcotest.(check int) "max_gauge keeps the maximum" 7 (B.Obs.gauge_value g)

let prop_parallel_sum =
  QCheck.Test.make ~name:"sharded counter sums exactly under Pool" ~count:30
    QCheck.(list_of_size Gen.(1 -- 50) small_nat)
    (fun xs ->
      let c = B.Obs.counter ~kind:B.Obs.Volatile "test.obs.parallel_sum" in
      let before = B.Obs.value c in
      let pool = B.Pool.create ~domains:4 () in
      ignore
        (B.Pool.map_array pool
           (fun x ->
             B.Obs.add c x;
             x)
           (Array.of_list xs));
      B.Obs.value c - before = List.fold_left ( + ) 0 xs)

(* {1 Det counters: identical for any -j and across reruns} *)

(* E1-E3 exercise Robust under parallel sweeps, the explorer config
   exercises Sync_net + Faults + Explore (now over the work-stealing map:
   its steal counter is Volatile, so it must NOT surface here), and the
   learning runs exercise the incremental-EU cache counters; only counters
   classified Det may appear with nonzero values in this comparison. *)
let det_workload ~jobs () =
  B.Obs.reset ();
  List.iter
    (fun id ->
      match Bn_experiments.Experiments.render ~jobs id with
      | Some _ -> ()
      | None -> Alcotest.failf "unknown experiment %s" id)
    [ "E1"; "E2"; "E3" ];
  let pool = B.Pool.create ~domains:jobs () in
  ignore (FS.explore_eig_n3t1 ~pool ~seed:42 ~trials:20 ());
  ignore (B.Learning.replicator ~rounds:100 B.Games.matching_pennies);
  ignore (B.Learning.fictitious_play ~rounds:100 B.Games.prisoners_dilemma);
  det_snapshot ()

let test_det_jobs_invariant () =
  let s1 = det_workload ~jobs:1 () in
  let s4 = det_workload ~jobs:4 () in
  Alcotest.check snapshot_t "Det counters identical at jobs=1 and jobs=4" s1 s4;
  let s1' = det_workload ~jobs:1 () in
  Alcotest.check snapshot_t "Det counters identical across reruns" s1 s1';
  let get name s = try List.assoc name s with Not_found -> 0 in
  Alcotest.(check bool) "incremental-EU recomputes surfaced as Det" true
    (get "learning.eu_recomputes" s1 > 0);
  Alcotest.(check bool) "incremental-EU skips surfaced as Det" true
    (get "learning.eu_skips" s1 > 0)

(* The SoA engines count steps, requests, satisfactions, flushes and
   cross-shard events as Det: the batched exchange makes all of them pure
   functions of (seed, shards, steps), never of the domain budget. *)
let soa_workload ~jobs () =
  B.Obs.reset ();
  let params = { (B.Scrip.default_params ~n:2_000) with B.Scrip.rounds = 0 } in
  ignore
    (B.Scrip_soa.run ~jobs ~shards:16 ~seed:42 ~steps:30 ~params
       ~kind_of:(fun i -> if i mod 9 = 0 then B.Scrip.Hoarder else B.Scrip.Standard 5)
       ~money_per_agent:2.0 ());
  ignore
    (B.Gnutella_soa.simulate ~jobs ~shards:16 (B.Prng.create 42)
       (B.Gnutella.default_params ~users:2_000));
  det_snapshot ()

let test_soa_det_counters () =
  let s1 = soa_workload ~jobs:1 () in
  let s4 = soa_workload ~jobs:4 () in
  Alcotest.check snapshot_t "SoA Det counters identical at jobs=1 and jobs=4" s1 s4;
  let s1' = soa_workload ~jobs:1 () in
  Alcotest.check snapshot_t "SoA Det counters identical across reruns" s1 s1';
  let get name = try List.assoc name s1 with Not_found -> 0 in
  Alcotest.(check int) "scrip_soa.steps" 30 (get "scrip_soa.steps");
  Alcotest.(check int) "scrip_soa.flushes" 30 (get "scrip_soa.flushes");
  Alcotest.(check bool) "scrip_soa.requests ticked" true (get "scrip_soa.requests" > 0);
  Alcotest.(check bool) "scrip_soa cross-shard events ticked" true
    (get "scrip_soa.cross_shard_events" > 0);
  Alcotest.(check int) "gnutella_soa.queries" 100_000 (get "gnutella_soa.queries");
  Alcotest.(check bool) "gnutella_soa cross-shard events ticked" true
    (get "gnutella_soa.cross_shard_events" > 0)

(* Stealing moves work between domains at the scheduler's whim, so the
   pool.steals counter is Volatile by construction: it must stay out of
   the Det snapshot (or the jobs-invariance above would be violated), while
   still being observable on the volatile side. *)
let test_steal_counter_volatile () =
  B.Obs.reset ();
  let pool = B.Pool.create ~domains:4 () in
  let busy x =
    let acc = ref x in
    for i = 1 to if x = 0 then 100_000 else 10 do
      acc := (!acc * 31) lxor i
    done;
    !acc
  in
  ignore (B.Pool.map_array_steal pool busy (Array.init 64 Fun.id));
  Alcotest.(check bool) "pool.steals absent from Det snapshot" true
    (not (List.mem_assoc "pool.steals" (det_snapshot ())));
  Alcotest.(check bool) "pool.steals present in Volatile snapshot" true
    (List.mem_assoc "pool.steals" (B.Obs.counters_snapshot ~kind:B.Obs.Volatile ()))

(* Pinned golden snapshot for the fixed-seed explorer run (serial). A
   change here means either the explorer's behaviour changed (update
   EXPECTED alongside the transcript goldens) or an instrumentation point
   moved — if the new value varies with -j, the counter is misclassified
   and must become Volatile. *)
let test_golden_explore_snapshot () =
  B.Obs.reset ();
  ignore (FS.explore_eig_n3t1 ~seed:42 ~trials:20 ());
  let got = List.filter (fun (_, v) -> v > 0) (det_snapshot ()) in
  let expected =
    [
      ("explore.schedules", 20);
      ("explore.shrink_evals", 44);
      ("explore.violations", 14);
      ("faults.link_events_applied", 69);
      ("sync_net.messages_dropped", 46);
      ("sync_net.messages_sent", 1281);
      ("sync_net.rounds", 156);
      ("sync_net.runs", 78);
    ]
  in
  Alcotest.check snapshot_t "golden Det snapshot (explore-eig-n3-t1, seed 42)" expected got

(* {1 Spans} *)

let collect_events f =
  B.Obs.reset ();
  B.Obs.set_tracing true;
  Fun.protect ~finally:(fun () -> B.Obs.set_tracing false) f;
  B.Obs.events ()

(* Per domain, every End must name the innermost open Begin and no span
   may stay open. [events] returns per-domain chronological streams, so
   filtering by tid preserves each domain's program order. *)
let check_well_nested evs =
  let stacks : (int, string list) Hashtbl.t = Hashtbl.create 8 in
  let begins = ref 0 in
  List.iter
    (fun (e : B.Obs.event) ->
      let stack = Option.value ~default:[] (Hashtbl.find_opt stacks e.tid) in
      match e.ph with
      | B.Obs.Begin ->
        incr begins;
        Hashtbl.replace stacks e.tid (e.ename :: stack)
      | B.Obs.End -> (
        match stack with
        | top :: rest ->
          Alcotest.(check string) "End names the innermost open span" top e.ename;
          Hashtbl.replace stacks e.tid rest
        | [] -> Alcotest.fail "End event without a matching Begin")
      | B.Obs.Instant -> ())
    evs;
  List.iter
    (fun (tid, stack) ->
      Alcotest.(check int) (Printf.sprintf "domain %d has no open spans" tid) 0
        (List.length stack))
    (B.Tbl.sorted_bindings stacks);
  !begins

let test_span_nesting_real_workload () =
  let evs =
    collect_events (fun () ->
        (match Bn_experiments.Experiments.render ~jobs:4 "E1" with
        | Some _ -> ()
        | None -> Alcotest.fail "unknown experiment E1");
        ignore (FS.explore_eig_n3t1 ~seed:42 ~trials:5 ()))
  in
  let begins = check_well_nested evs in
  Alcotest.(check bool) "recorded a non-trivial number of spans" true (begins > 10);
  Alcotest.(check int) "span_count matches Begin events" begins (B.Obs.span_count ());
  let names =
    List.filter_map
      (fun (e : B.Obs.event) -> if e.ph = B.Obs.Begin then Some e.ename else None)
      evs
  in
  List.iter
    (fun required ->
      Alcotest.(check bool)
        (Printf.sprintf "trace contains a %S span" required)
        true (List.mem required names))
    [ "exp.E1"; "pool.chunk"; "robust.search"; "sync_net.run"; "sync_net.round"; "explore.trial" ]

let test_spans_off_by_default () =
  B.Obs.reset ();
  ignore (FS.explore_eig_n3t1 ~seed:42 ~trials:2 ());
  Alcotest.(check int) "no spans recorded with tracing off" 0 (B.Obs.span_count ());
  Alcotest.(check int) "no events recorded with tracing off" 0 (List.length (B.Obs.events ()))

let prop_span_nesting =
  QCheck.Test.make ~name:"random span shapes are well-nested" ~count:20
    QCheck.(small_list (int_bound 4))
    (fun shape ->
      let evs =
        collect_events (fun () ->
            List.iter
              (fun depth ->
                let rec nest d =
                  if d > 0 then B.Obs.span "test.obs.nest" (fun () -> nest (d - 1))
                in
                nest depth)
              shape)
      in
      check_well_nested evs = List.fold_left ( + ) 0 shape)

(* {1 Exporters} *)

let test_exporters_valid_json () =
  B.Obs.set_tracing true;
  Fun.protect
    ~finally:(fun () -> B.Obs.set_tracing false)
    (fun () ->
      B.Obs.reset ();
      let h = B.Obs.hist "test.obs.hist" in
      List.iter (B.Obs.observe h) [ 0; 1; 2; 3; 1000; 1000000 ];
      ignore (FS.explore_eig_n3t1 ~seed:1 ~trials:5 ()));
  Alcotest.(check bool) "chrome trace is valid JSON" true
    (B.Obs.Json.validate (B.Obs.Export.chrome_trace ()));
  Alcotest.(check bool) "metrics snapshot is valid JSON" true
    (B.Obs.Json.validate (B.Obs.Export.metrics_json ()));
  B.Obs.reset ();
  Alcotest.(check bool) "empty chrome trace is valid JSON" true
    (B.Obs.Json.validate (B.Obs.Export.chrome_trace ()));
  Alcotest.(check bool) "empty metrics snapshot is valid JSON" true
    (B.Obs.Json.validate (B.Obs.Export.metrics_json ()))

let test_json_validator () =
  let ok = [ "{}"; "[]"; "null"; "-12.5e-3"; {|{"a":[1,2,{"b":"x\né"}],"c":false}|} ] in
  let bad = [ ""; "{"; "[1,]"; {|{"a":}|}; {|"unterminated|}; "{} x"; "01"; "+1"; "nul" ] in
  List.iter
    (fun s -> Alcotest.(check bool) (Printf.sprintf "accepts %s" s) true (B.Obs.Json.validate s))
    ok;
  List.iter
    (fun s -> Alcotest.(check bool) (Printf.sprintf "rejects %s" s) false (B.Obs.Json.validate s))
    bad

let prop_escape_valid =
  QCheck.Test.make ~name:"json_escape always yields a valid JSON string" ~count:200
    QCheck.string
    (fun s -> B.Obs.Json.validate ("\"" ^ B.Obs.json_escape s ^ "\""))

(* {1 Quantile sketches} *)

module Sk = B.Obs.Sketch

let contains s ~sub =
  let ls = String.length sub and ln = String.length s in
  let rec scan i = i + ls <= ln && (String.sub s i ls = sub || scan (i + 1)) in
  ls = 0 || scan 0

(* Exact nearest-rank quantile over the raw values, the reference the
   sketch's bounded-error claim is checked against. *)
let exact_quantile vs q =
  let sorted = List.sort compare vs in
  let n = List.length sorted in
  let rank = max 1 (min n (int_of_float (Float.ceil (q *. float_of_int n)))) in
  List.nth sorted (rank - 1)

let test_sketch_basic () =
  let s = Sk.of_values [ 5; 1; 3; 3; 2 ] in
  Alcotest.(check int) "count" 5 (Sk.count s);
  (* Values below 64 land in exact buckets, so small-value quantiles are
     exact nearest-rank. *)
  Alcotest.(check int) "p50 exact below 64" 3 (Sk.quantile s 0.5);
  Alcotest.(check int) "p999 = max for small sets" 5 (Sk.quantile s 0.999);
  Alcotest.(check int) "q=0 clamps to rank 1" 1 (Sk.quantile s 0.0);
  Alcotest.(check int) "empty sketch quantile is 0" 0 (Sk.quantile Sk.empty 0.5);
  Alcotest.(check int) "negatives clamp to 0" 0 (Sk.quantile (Sk.of_values [ -7 ]) 0.5);
  let qs = Sk.quantiles s in
  Alcotest.(check (list string)) "quantiles labels"
    [ "p50"; "p90"; "p99"; "p999" ]
    (List.map fst qs)

let prop_sketch_merge =
  QCheck.Test.make ~name:"sketch merge is associative and commutative" ~count:100
    QCheck.(
      triple
        (list_of_size Gen.(0 -- 40) (int_bound 1_000_000))
        (list_of_size Gen.(0 -- 40) (int_bound 1_000_000))
        (list_of_size Gen.(0 -- 40) (int_bound 1_000_000)))
    (fun (a, b, c) ->
      let sa = Sk.of_values a and sb = Sk.of_values b and sc = Sk.of_values c in
      Sk.merge (Sk.merge sa sb) sc = Sk.merge sa (Sk.merge sb sc)
      && Sk.merge sa sb = Sk.merge sb sa
      && Sk.count (Sk.merge sa sb) = List.length a + List.length b
      && Sk.merge sa Sk.empty = sa)

let prop_sketch_rank_error =
  QCheck.Test.make ~name:"sketch quantiles within 1/32 of exact nearest-rank" ~count:100
    QCheck.(list_of_size Gen.(1 -- 200) (int_bound 1_000_000))
    (fun vs ->
      let s = Sk.of_values vs in
      List.for_all
        (fun q ->
          let exact = exact_quantile vs q in
          let got = Sk.quantile s q in
          abs (got - exact) <= max 1 (exact / 32))
        [ 0.5; 0.9; 0.99; 0.999 ])

(* The Det sketch sections of the workloads above must be byte-identical
   at -j1 and -j4 and across reruns — the sketch analogue of
   [test_det_jobs_invariant]. Cells are compared structurally (bucket
   indices AND counts), which is exactly what obsdiff asserts. *)
let det_sketch_workload ~jobs () =
  B.Obs.reset ();
  let pool = B.Pool.create ~domains:jobs () in
  ignore (FS.explore_eig_n3t1 ~pool ~seed:42 ~trials:20 ());
  let params = { (B.Scrip.default_params ~n:2_000) with B.Scrip.rounds = 0 } in
  ignore
    (B.Scrip_soa.run ~jobs ~shards:16 ~seed:42 ~steps:10 ~params
       ~kind_of:(fun i -> if i mod 9 = 0 then B.Scrip.Hoarder else B.Scrip.Standard 5)
       ~money_per_agent:2.0 ());
  ignore
    (B.Gnutella_soa.simulate ~jobs ~shards:16 (B.Prng.create 42)
       (B.Gnutella.default_params ~users:2_000));
  List.map
    (fun (name, snap) ->
      ( name,
        Printf.sprintf "n=%d %s" (Sk.count snap)
          (String.concat ";"
             (List.map (fun (b, c) -> Printf.sprintf "%d:%d" b c) snap.Sk.cells)) ))
    (B.Obs.sketches_snapshot ~kind:B.Obs.Det ())

let test_sketch_det_invariance () =
  let s1 = det_sketch_workload ~jobs:1 () in
  let s4 = det_sketch_workload ~jobs:4 () in
  Alcotest.(check (list (pair string string))) "Det sketches identical at jobs=1 and jobs=4" s1 s4;
  let s1' = det_sketch_workload ~jobs:1 () in
  Alcotest.(check (list (pair string string))) "Det sketches identical across reruns" s1 s1';
  let count name =
    match List.assoc_opt name (B.Obs.sketches_snapshot ~kind:B.Obs.Det ()) with
    | Some snap -> Sk.count snap
    | None -> -1
  in
  Alcotest.(check int) "shrink-evals sketch counts the violations" 14
    (count "explore.shrink_evals_per_violation");
  Alcotest.(check int) "scrip requests/step sketch counts the steps" 10
    (count "scrip_soa.requests_per_step");
  Alcotest.(check bool) "gnutella queries/batch sketch populated" true
    (count "gnutella_soa.queries_per_batch" > 0)

(* Wall-clock sketches stay empty until --profile/--metrics style flags
   flip the timing switch: with it off, [timed] is one atomic load. *)
let test_volatile_sketch_gated () =
  B.Obs.reset ();
  let params = { (B.Scrip.default_params ~n:500) with B.Scrip.rounds = 0 } in
  let run () =
    ignore
      (B.Scrip_soa.run ~shards:4 ~seed:1 ~steps:3 ~params
         ~kind_of:(fun _ -> B.Scrip.Standard 5)
         ~money_per_agent:2.0 ())
  in
  run ();
  let count name =
    match List.assoc_opt name (B.Obs.sketches_snapshot ~kind:B.Obs.Volatile ()) with
    | Some snap -> Sk.count snap
    | None -> -1
  in
  Alcotest.(check int) "timing off records nothing" 0 (count "scrip_soa.step_ns");
  B.Obs.set_timing true;
  Fun.protect
    ~finally:(fun () -> B.Obs.set_timing false)
    (fun () ->
      run ();
      Alcotest.(check int) "timing on records one duration per step" 3
        (count "scrip_soa.step_ns"))

(* {1 Profiler and GC probes} *)

let test_profile_rows_and_folded () =
  B.Obs.reset ();
  B.Obs.set_tracing true;
  B.Obs.set_gc_probes true;
  Fun.protect
    ~finally:(fun () ->
      B.Obs.set_tracing false;
      B.Obs.set_gc_probes false)
    (fun () ->
      List.iter
        (fun id -> ignore (Bn_experiments.Experiments.render ~jobs:2 id))
        [ "E1"; "E2"; "E3" ]);
  let rows = B.Obs.Profile.rows () in
  let leaf r = List.nth r.B.Obs.Profile.path (List.length r.B.Obs.Profile.path - 1) in
  List.iter
    (fun name ->
      Alcotest.(check bool)
        (Printf.sprintf "profile covers %s" name)
        true
        (List.exists (fun r -> leaf r = name) rows))
    [ "exp.E1"; "exp.E2"; "exp.E3" ];
  List.iter
    (fun r ->
      Alcotest.(check bool) "exclusive <= inclusive" true
        (r.B.Obs.Profile.excl_us <= r.B.Obs.Profile.incl_us +. 1e-6);
      Alcotest.(check bool) "exclusive >= 0" true (r.B.Obs.Profile.excl_us >= -1e-6))
    rows;
  let table = B.Obs.Profile.table () in
  Alcotest.(check bool) "table has the header" true (contains table ~sub:"excl ms");
  let folded = B.Obs.Profile.folded () in
  Alcotest.(check bool) "folded output is non-empty" true (String.length folded > 0);
  List.iter
    (fun line ->
      match String.rindex_opt line ' ' with
      | None -> Alcotest.failf "folded line without weight: %S" line
      | Some i ->
        let weight = String.sub line (i + 1) (String.length line - i - 1) in
        Alcotest.(check bool)
          (Printf.sprintf "folded weight is a positive int: %S" line)
          true
          (match int_of_string_opt weight with Some w -> w > 0 | None -> false))
    (List.filter (fun l -> l <> "") (String.split_on_char '\n' folded));
  (* GC probes attributed per region: the E-experiments allocate. *)
  let gc = B.Obs.gc_snapshot () in
  Alcotest.(check bool) "gc snapshot has the exp.E3 region" true (List.mem_assoc "exp.E3" gc)

let test_gc_probes_off_by_default () =
  B.Obs.reset ();
  B.Obs.set_tracing true;
  Fun.protect
    ~finally:(fun () -> B.Obs.set_tracing false)
    (fun () -> ignore (FS.explore_eig_n3t1 ~seed:3 ~trials:2 ()));
  Alcotest.(check (list (pair string (triple int int int)))) "no gc data without the switch" []
    (List.map (fun (n, (a, b, c)) -> (n, (a, b, c))) (B.Obs.gc_snapshot ()))

(* The acceptance bound: full instrumentation (tracing + timing + GC
   probes) costs < 5% wall time at experiment scale — the `--profile
   --all` shape, where spans wrap batches of real work rather than
   microsecond slivers. The workload below matches that granularity
   (SoA steps of 20k agents plus a small explorer mix); min-of-N on
   both sides squeezes out scheduler noise, and Obs.now_us is the
   sanctioned clock. *)
let test_instrumentation_overhead () =
  let params = { (B.Scrip.default_params ~n:20_000) with B.Scrip.rounds = 0 } in
  let workload () =
    ignore
      (B.Scrip_soa.run ~shards:16 ~seed:11 ~steps:15 ~params
         ~kind_of:(fun _ -> B.Scrip.Standard 5)
         ~money_per_agent:2.0 ());
    ignore (FS.explore_eig_n3t1 ~seed:42 ~trials:20 ())
  in
  let time_min n f =
    let best = ref infinity in
    for _ = 1 to n do
      let t0 = B.Obs.now_us () in
      f ();
      let dt = B.Obs.now_us () -. t0 in
      if dt < !best then best := dt
    done;
    !best
  in
  B.Obs.reset ();
  workload ();
  (* warm caches *)
  let off = time_min 5 workload in
  B.Obs.set_tracing true;
  B.Obs.set_timing true;
  B.Obs.set_gc_probes true;
  Fun.protect
    ~finally:(fun () ->
      B.Obs.set_tracing false;
      B.Obs.set_timing false;
      B.Obs.set_gc_probes false;
      B.Obs.reset ())
    (fun () ->
      workload ();
      (* warm instrumented paths *)
      let on = time_min 5 workload in
      Alcotest.(check bool)
        (Printf.sprintf "instrumented %.0fus vs bare %.0fus (< 5%% overhead)" on off)
        true
        (on < off *. 1.05))

(* {1 Summary quantiles (the S6 fix)} *)

let test_summary_renders_quantiles () =
  B.Obs.reset ();
  let h = B.Obs.hist ~kind:B.Obs.Volatile "test.obs.sum_hist" in
  List.iter (B.Obs.observe h) [ 1; 2; 4; 1000 ];
  let sk = B.Obs.sketch ~kind:B.Obs.Volatile "test.obs.sum_sketch" in
  List.iter (B.Obs.observe_sk sk) [ 10; 20; 30 ];
  let s = B.Obs.summary () in
  let has sub = contains s ~sub in
  Alcotest.(check bool) "summary has a quantiles section" true (has "quantiles (");
  Alcotest.(check bool) "summary shows the hist" true (has "test.obs.sum_hist");
  Alcotest.(check bool) "summary shows the sketch" true (has "test.obs.sum_sketch");
  Alcotest.(check bool) "summary shows p50 values" true (has "p50=");
  B.Obs.reset ()

(* {1 Metrics v2 + JSON parser} *)

let test_metrics_v2_sections () =
  B.Obs.reset ();
  let sk = B.Obs.sketch ~kind:B.Obs.Det "test.obs.v2_sketch" in
  List.iter (B.Obs.observe_sk sk) [ 1; 2; 300 ];
  let m = B.Obs.Export.metrics_json () in
  Alcotest.(check bool) "metrics v2 is valid JSON" true (B.Obs.Json.validate m);
  match B.Obs.Json.parse m with
  | None -> Alcotest.fail "metrics v2 did not parse"
  | Some v ->
    Alcotest.(check (option string)) "schema bumped"
      (Some "beyond-nash-metrics/2")
      (match B.Obs.Json.member "schema" v with Some (B.Obs.Json.Str s) -> Some s | _ -> None);
    (match B.Obs.Json.member "sketches" v with
    | Some (B.Obs.Json.Obj kvs) ->
      Alcotest.(check bool) "Det sketch exported" true (List.mem_assoc "test.obs.v2_sketch" kvs)
    | _ -> Alcotest.fail "no sketches section");
    (match B.Obs.Json.member "gc" v with
    | Some (B.Obs.Json.Obj _) -> ()
    | _ -> Alcotest.fail "no gc section");
    B.Obs.reset ()

let test_json_parse () =
  let module J = B.Obs.Json in
  (match J.parse {|{"a": [1, 2.5e1, "x\nA", true, null], "b": -3}|} with
  | Some (J.Obj [ ("a", J.Arr [ J.Num 1.0; J.Num 25.0; J.Str "x\nA"; J.Bool true; J.Null ]);
                  ("b", J.Num v) ]) ->
    Alcotest.(check (float 0.0)) "negative number" (-3.0) v
  | _ -> Alcotest.fail "parse shape mismatch");
  List.iter
    (fun s ->
      Alcotest.(check bool) (Printf.sprintf "rejects %s" s) true (J.parse s = None))
    [ ""; "{"; "[1,]"; "01"; "{} x"; {|{"a":}|} ]

(* {1 obsdiff} *)

module Od = B.Obsdiff

let diff_exn ?threshold ?rows a b =
  match Od.diff ?threshold ?rows a b with
  | Ok r -> r
  | Error e -> Alcotest.failf "obsdiff error: %s" e

(* Same-seed reruns produce metrics whose Det sections agree, and
   obsdiff says so — acceptance criterion (a). *)
let test_obsdiff_metrics_reruns_pass () =
  ignore (det_sketch_workload ~jobs:1 ());
  let m1 = B.Obs.Export.metrics_json () in
  ignore (det_sketch_workload ~jobs:4 ());
  let m2 = B.Obs.Export.metrics_json () in
  let r = diff_exn m1 m2 in
  Alcotest.(check string) "kind detected" "metrics" r.Od.kind;
  Alcotest.(check bool) "non-trivial check count" true (List.length r.Od.checks > 5);
  Alcotest.(check int) "rerun metrics diff passes" 0 r.Od.failures;
  Alcotest.(check bool) "verdict json is valid" true
    (B.Obs.Json.validate (Od.verdict_json ~ref_name:"a" ~new_name:"b" r));
  B.Obs.reset ()

let test_obsdiff_metrics_catches_drift () =
  ignore (det_sketch_workload ~jobs:1 ());
  let m1 = B.Obs.Export.metrics_json () in
  B.Obs.reset ();
  let c = B.Obs.counter ~kind:B.Obs.Det "explore.schedules" in
  B.Obs.add c 999;
  let m2 = B.Obs.Export.metrics_json () in
  let r = diff_exn m1 m2 in
  Alcotest.(check bool) "drifted Det counters fail" true (r.Od.failures > 0);
  Alcotest.(check bool) "the drifted counter is named" true
    (List.exists
       (fun c -> c.Od.status <> Od.Pass && c.Od.cname = "counter:explore.schedules")
       r.Od.checks);
  B.Obs.reset ()

(* A doctored >2x regression fails with a nonzero failure count and the
   offending row named — acceptance criterion (b). v1 and v2 bench files
   mix freely (extra v2 columns are ignored). *)
let test_obsdiff_bench_doctored_fails () =
  let v1 =
    {|{ "schema": "beyond-nash-bench/1", "jobs": 1,
        "microbench": [ { "name": "beyond_nash learning/replicator-500-rounds", "ns_per_run": 1000.0 },
                        { "name": "beyond_nash nash/support-enum-3x3", "ns_per_run": 500.0 } ],
        "wallclock": [ { "name": "scrip/soa-1e6-step", "mode": "serial", "jobs": 1, "seconds": 0.5 } ] }|}
  in
  let v2_ok =
    {|{ "schema": "beyond-nash-bench/2", "jobs": 1,
        "microbench": [ { "name": "beyond_nash learning/replicator-500-rounds", "ns_per_run": 1500.0, "runs": 30, "p50_ns": 1400.0, "p99_ns": 1900.0, "stddev_ns": 100.0 },
                        { "name": "beyond_nash nash/support-enum-3x3", "ns_per_run": 400.0, "runs": 40, "p50_ns": 390.0, "p99_ns": 600.0, "stddev_ns": 50.0 } ],
        "wallclock": [ { "name": "scrip/soa-1e6-step", "mode": "serial", "jobs": 1, "seconds": 0.6 } ] }|}
  in
  let doctored =
    {|{ "schema": "beyond-nash-bench/2", "jobs": 1,
        "microbench": [ { "name": "beyond_nash learning/replicator-500-rounds", "ns_per_run": 3100.0 },
                        { "name": "beyond_nash nash/support-enum-3x3", "ns_per_run": 510.0 } ],
        "wallclock": [ { "name": "scrip/soa-1e6-step", "mode": "serial", "jobs": 1, "seconds": 0.51 } ] }|}
  in
  let r = diff_exn v1 v2_ok in
  Alcotest.(check string) "kind detected" "bench" r.Od.kind;
  Alcotest.(check int) "v1 vs v2 within threshold passes" 0 r.Od.failures;
  Alcotest.(check int) "all three rows compared" 3 (List.length r.Od.checks);
  let r = diff_exn v1 doctored in
  Alcotest.(check int) "exactly the doctored row fails" 1 r.Od.failures;
  Alcotest.(check bool) "the regressed row is named" true
    (List.exists
       (fun c ->
         c.Od.status = Od.Fail && c.Od.cname = "beyond_nash learning/replicator-500-rounds")
       r.Od.checks);
  (* --rows: a named row must exist on both sides. *)
  let r = diff_exn ~rows:[ "no-such-row" ] v1 v2_ok in
  Alcotest.(check bool) "missing named row fails" true (r.Od.failures > 0);
  (* A custom threshold loosens the gate. *)
  let r = diff_exn ~threshold:4.0 v1 doctored in
  Alcotest.(check int) "threshold 4x tolerates the 3.1x row" 0 r.Od.failures

let test_obsdiff_rejects_garbage () =
  (match Od.diff "{ not json" "{}" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted malformed REF");
  match Od.diff {|{"schema": "beyond-nash-bench/1"}|} {|{"schema": "beyond-nash-metrics/2"}|} with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted mixed artifact kinds"

let suite =
  [
    Alcotest.test_case "counter registry" `Quick test_registry;
    Alcotest.test_case "add2 batched update" `Quick test_add2;
    Alcotest.test_case "gauge max" `Quick test_gauge;
    QCheck_alcotest.to_alcotest prop_parallel_sum;
    Alcotest.test_case "Det counters: jobs=1 = jobs=4 (E1-E3 + explore)" `Slow
      test_det_jobs_invariant;
    Alcotest.test_case "golden Det snapshot (fixed-seed explore)" `Quick
      test_golden_explore_snapshot;
    Alcotest.test_case "Det counters: SoA engines (jobs + rerun invariant)" `Slow
      test_soa_det_counters;
    Alcotest.test_case "pool.steals is Volatile" `Quick test_steal_counter_volatile;
    Alcotest.test_case "span nesting on a real workload" `Slow test_span_nesting_real_workload;
    Alcotest.test_case "tracing off records nothing" `Quick test_spans_off_by_default;
    QCheck_alcotest.to_alcotest prop_span_nesting;
    Alcotest.test_case "exporters emit valid JSON" `Quick test_exporters_valid_json;
    Alcotest.test_case "JSON validator accept/reject" `Quick test_json_validator;
    QCheck_alcotest.to_alcotest prop_escape_valid;
    Alcotest.test_case "sketch: basics and exact small-value quantiles" `Quick test_sketch_basic;
    QCheck_alcotest.to_alcotest prop_sketch_merge;
    QCheck_alcotest.to_alcotest prop_sketch_rank_error;
    Alcotest.test_case "Det sketches: jobs=1 = jobs=4 and rerun invariant" `Slow
      test_sketch_det_invariance;
    Alcotest.test_case "Volatile timing sketches gated by set_timing" `Quick
      test_volatile_sketch_gated;
    Alcotest.test_case "profiler rows, folded export, gc regions" `Slow
      test_profile_rows_and_folded;
    Alcotest.test_case "gc probes off by default" `Quick test_gc_probes_off_by_default;
    Alcotest.test_case "instrumentation overhead < 5%" `Slow test_instrumentation_overhead;
    Alcotest.test_case "summary renders hist+sketch quantiles" `Quick
      test_summary_renders_quantiles;
    Alcotest.test_case "metrics v2 sections present and parseable" `Quick
      test_metrics_v2_sections;
    Alcotest.test_case "JSON parser shapes and rejections" `Quick test_json_parse;
    Alcotest.test_case "obsdiff: rerun metrics pass" `Slow test_obsdiff_metrics_reruns_pass;
    Alcotest.test_case "obsdiff: Det counter drift fails" `Slow test_obsdiff_metrics_catches_drift;
    Alcotest.test_case "obsdiff: doctored bench regression fails" `Quick
      test_obsdiff_bench_doctored_fails;
    Alcotest.test_case "obsdiff: garbage and kind mismatch rejected" `Quick
      test_obsdiff_rejects_garbage;
  ]
