module B = Beyond_nash
module R = B.Robust

(* {1 The paper's §2 games} *)

let coord n = B.Games.coordination_01 n
let all0 n = B.Mixed.pure_profile (coord n) (Array.make n 0)

let test_coordination_is_nash_not_2resilient () =
  let g = coord 5 in
  let p = all0 5 in
  Alcotest.(check bool) "Nash" true (B.Nash.is_nash g p);
  Alcotest.(check bool) "1-resilient" true (R.is_k_resilient g p ~k:1);
  Alcotest.(check bool) "not 2-resilient" false (R.is_k_resilient g p ~k:2)

let test_coordination_violation_witness () =
  match R.check_resilience (coord 4) (all0 4) ~k:2 with
  | R.Holds -> Alcotest.fail "should fail at k=2"
  | R.Fails v ->
    Alcotest.(check int) "pair deviates" 2 (List.length v.R.coalition);
    Alcotest.(check bool) "gains" true (v.R.after > v.R.before)

let test_coordination_max_resilience () =
  Alcotest.(check int) "max resilience 1" 1 (R.max_resilience (coord 5) (all0 5))

let test_bargaining_resilient_not_immune () =
  let g = B.Games.bargaining 4 in
  let stay = B.Mixed.pure_profile g (Array.make 4 0) in
  Alcotest.(check int) "k-resilient for all k" 4 (R.max_resilience g stay);
  Alcotest.(check bool) "not 1-immune" false (R.is_t_immune g stay ~t:1);
  Alcotest.(check int) "max immunity 0" 0 (R.max_immunity g stay)

let test_bargaining_immunity_witness () =
  let g = B.Games.bargaining 3 in
  let stay = B.Mixed.pure_profile g (Array.make 3 0) in
  match R.check_immunity g stay ~t:1 with
  | R.Holds -> Alcotest.fail "should fail"
  | R.Fails v ->
    Alcotest.(check int) "one traitor" 1 (List.length v.R.traitors);
    Alcotest.(check bool) "victim not traitor" true (not (List.mem v.R.victim v.R.traitors));
    Alcotest.(check (float 1e-9)) "victim goes to 0" 0.0 v.R.after

let test_nash_equals_10_robust () =
  (* On several games: Nash iff (1,0)-robust for pure profiles. *)
  List.iter
    (fun g ->
      B.Normal_form.iter_profiles g (fun p ->
          let prof = B.Mixed.pure_profile g p in
          Alcotest.(check bool) "Nash = (1,0)-robust"
            (B.Nash.is_nash g prof)
            (R.is_robust g prof ~k:1 ~t:0)))
    [ B.Games.prisoners_dilemma; B.Games.battle_of_sexes; B.Games.chicken; coord 3 ]

let test_zero_resilience_trivial () =
  let g = B.Games.prisoners_dilemma in
  let cc = B.Mixed.pure_profile g [| 0; 0 |] in
  Alcotest.(check bool) "0-resilient holds for anything" true (R.is_k_resilient g cc ~k:0)

let test_weak_vs_strong_variant () =
  (* In the coordination game with n = 4, deviations by pairs make both
     deviators strictly better, so even the Weak variant fails. *)
  let g = coord 4 in
  Alcotest.(check bool) "weak also fails" false
    (R.is_k_resilient ~variant:R.Weak g (all0 4) ~k:2);
  (* A game where one member of the deviation gains and the other loses:
     strong fails, weak holds. *)
  let g2 =
    B.Normal_form.create ~actions:[| 2; 2 |] (fun p ->
        match (p.(0), p.(1)) with
        | 0, 0 -> [| 1.0; 1.0 |]
        | 1, 1 -> [| 5.0; 0.0 |] (* joint deviation helps 0, hurts 1 *)
        | _ -> [| 0.0; 0.0 |])
  in
  let prof = B.Mixed.pure_profile g2 [| 0; 0 |] in
  Alcotest.(check bool) "strong fails" false (R.is_k_resilient ~variant:R.Strong g2 prof ~k:2);
  Alcotest.(check bool) "weak holds" true (R.is_k_resilient ~variant:R.Weak g2 prof ~k:2)

let test_immunity_of_constant_game () =
  (* A game where payoffs don't depend on others: trivially immune. *)
  let g = B.Normal_form.create ~actions:[| 2; 2; 2 |] (fun p -> Array.map float_of_int (Array.map (fun a -> 1 - a) p)) in
  let prof = B.Mixed.pure_profile g [| 0; 0; 0 |] in
  Alcotest.(check int) "fully immune" 3 (R.max_immunity g prof)

let test_robust_pure_equilibria_pd () =
  (* PD: (D,D) is Nash = (1,0)-robust; check enumeration finds exactly it. *)
  let eqs = R.robust_pure_equilibria B.Games.prisoners_dilemma ~k:1 ~t:0 in
  Alcotest.(check int) "exactly DD" 1 (List.length eqs);
  Alcotest.(check (array int)) "is DD" [| 1; 1 |] (List.hd eqs)

let test_robustness_combines () =
  (* (k,t)-robust implies k-resilient and t-immune separately. *)
  let g = B.Games.bargaining 4 in
  let stay = B.Mixed.pure_profile g (Array.make 4 0) in
  Alcotest.(check bool) "(2,0)-robust" true (R.is_robust g stay ~k:2 ~t:0);
  Alcotest.(check bool) "not (1,1)-robust (immunity side)" false (R.is_robust g stay ~k:1 ~t:1)

let test_punishment_bargaining () =
  let g = B.Games.bargaining 4 in
  let target = Array.make 4 2.0 in
  (match R.find_punishment g ~target ~budget:1 with
  | Some _ -> ()
  | None -> Alcotest.fail "bargaining has a punishment profile");
  match R.find_punishment g ~target ~budget:3 with
  | Some rho ->
    (* With everyone punished below 2 even when 3 deviate. *)
    Alcotest.(check bool) "profile has a leaver" true (Array.exists (( = ) 1) rho)
  | None -> Alcotest.fail "punishment with larger budget"

let test_punishment_impossible () =
  (* In a constant game everyone always gets 1; can't punish below 1. *)
  let g = B.Normal_form.create ~actions:[| 2; 2 |] (fun _ -> [| 1.0; 1.0 |]) in
  Alcotest.(check bool) "no punishment" true (R.find_punishment g ~target:[| 1.0; 1.0 |] ~budget:1 = None)

let test_mixed_profile_robustness () =
  (* Uniform mixing in matching pennies is Nash hence (1,0)-robust. *)
  let g = B.Games.matching_pennies in
  let prof = B.Mixed.uniform_profile g in
  Alcotest.(check bool) "(1,0)-robust" true (R.is_robust g prof ~k:1 ~t:0)

let resilience_monotone_property =
  QCheck.Test.make ~count:40 ~name:"robust: k-resilience is monotone decreasing in k"
    QCheck.(array_of_size (Gen.return 8) (float_range (-3.0) 3.0))
    (fun payoffs ->
      let g =
        B.Normal_form.create ~actions:[| 2; 2; 2 |] (fun p ->
            let idx = (p.(0) * 4) + (p.(1) * 2) + p.(2) in
            [| payoffs.(idx mod 8); payoffs.((idx + 3) mod 8); payoffs.((idx + 5) mod 8) |])
      in
      let prof = B.Mixed.pure_profile g [| 0; 0; 0 |] in
      let r1 = R.is_k_resilient g prof ~k:1 in
      let r2 = R.is_k_resilient g prof ~k:2 in
      let r3 = R.is_k_resilient g prof ~k:3 in
      ((not r2) || r1) && ((not r3) || r2))

let immunity_monotone_property =
  QCheck.Test.make ~count:40 ~name:"robust: t-immunity is monotone decreasing in t"
    QCheck.(array_of_size (Gen.return 8) (float_range (-3.0) 3.0))
    (fun payoffs ->
      let g =
        B.Normal_form.create ~actions:[| 2; 2; 2 |] (fun p ->
            let idx = (p.(0) * 4) + (p.(1) * 2) + p.(2) in
            [| payoffs.(idx mod 8); payoffs.((idx + 1) mod 8); payoffs.((idx + 2) mod 8) |])
      in
      let prof = B.Mixed.pure_profile g [| 0; 0; 0 |] in
      let i1 = R.is_t_immune g prof ~t:1 in
      let i2 = R.is_t_immune g prof ~t:2 in
      (not i2) || i1)

let nash_iff_1resilient_property =
  QCheck.Test.make ~count:40 ~name:"robust: 1-resilient iff Nash (pure profiles)"
    QCheck.(array_of_size (Gen.return 8) (float_range (-3.0) 3.0))
    (fun payoffs ->
      let g =
        B.Normal_form.create ~actions:[| 2; 2 |] (fun p ->
            let idx = (p.(0) * 2) + p.(1) in
            [| payoffs.(idx); payoffs.(4 + idx) |])
      in
      let ok = ref true in
      B.Normal_form.iter_profiles g (fun p ->
          let prof = B.Mixed.pure_profile g p in
          if B.Nash.is_nash g prof <> R.is_k_resilient g prof ~k:1 then ok := false);
      !ok)

(* Random 3-player 2-action game from 8 payoff draws. *)
let random_game payoffs =
  B.Normal_form.create ~actions:[| 2; 2; 2 |] (fun p ->
      let idx = (p.(0) * 4) + (p.(1) * 2) + p.(2) in
      [| payoffs.(idx mod 8); payoffs.((idx + 3) mod 8); payoffs.((idx + 6) mod 8) |])

let parallel_agrees_with_serial_property =
  QCheck.Test.make ~count:40 ~name:"robust: ~jobs:4 verdict = serial verdict"
    QCheck.(array_of_size (Gen.return 8) (float_range (-3.0) 3.0))
    (fun payoffs ->
      let g = random_game payoffs in
      let ok = ref true in
      B.Normal_form.iter_profiles g (fun p ->
          let prof = B.Mixed.pure_profile g p in
          (* Full verdicts, not just booleans: the parallel scan must also
             report the same first violation as the serial one. *)
          if
            R.check_resilience ~jobs:4 g prof ~k:2 <> R.check_resilience g prof ~k:2
            || R.check_robustness ~jobs:4 g prof ~k:1 ~t:1
               <> R.check_robustness g prof ~k:1 ~t:1
            || R.is_k_resilient ~jobs:4 g prof ~k:3 <> R.is_k_resilient g prof ~k:3
          then ok := false);
      !ok)

let k1_resilience_is_unilateral_nash_property =
  QCheck.Test.make ~count:40 ~name:"robust: ~k:1 = unilateral-deviation (Nash) check"
    QCheck.(array_of_size (Gen.return 8) (float_range (-3.0) 3.0))
    (fun payoffs ->
      let g = random_game payoffs in
      let eps = 1e-9 in
      let unilaterally_stable prof =
        let base = Array.init 3 (B.Mixed.expected_payoff g prof) in
        let gain = ref false in
        for i = 0 to 2 do
          for a = 0 to 1 do
            if B.Mixed.expected_payoff_vs_pure g prof ~player:i ~action:a > base.(i) +. eps
            then gain := true
          done
        done;
        not !gain
      in
      let ok = ref true in
      B.Normal_form.iter_profiles g (fun p ->
          let prof = B.Mixed.pure_profile g p in
          if R.is_k_resilient ~jobs:4 g prof ~k:1 <> unilaterally_stable prof then ok := false);
      !ok)

(* {1 Kernel-swap agreement}

   [Ref_impl] is the pre-optimization robustness checker: list-materialized
   joint assignments ([Combin.joint_assignments]), a fresh profile copy per
   assignment and full-scan [expected_payoff_naive] evaluations. The
   production kernel (stride-shifted table reads on pure profiles,
   support-product expectations on mixed ones) must agree with it
   verdict-for-verdict — including {e which} violation is reported. *)
module Ref_impl = struct
  let deviate g prof assignment =
    let deviated = Array.copy prof in
    List.iter
      (fun (i, a) -> deviated.(i) <- B.Mixed.pure ~num_actions:(B.Normal_form.num_actions g i) a)
      assignment;
    deviated

  let baseline g prof =
    Array.init (B.Normal_form.n_players g) (B.Mixed.expected_payoff_naive g prof)

  let coalition_traitor_pairs n ~k ~t =
    let coalitions = if k = 0 then [ [] ] else [] :: B.Combin.subsets_up_to n k in
    List.concat_map
      (fun coalition ->
        let rest = List.filter (fun i -> not (List.mem i coalition)) (List.init n Fun.id) in
        let rest_count = List.length rest in
        let traitor_sets =
          if t = 0 then [ [] ]
          else
            [] ::
            List.map
              (List.map (fun idx -> List.nth rest idx))
              (B.Combin.subsets_up_to rest_count (min t rest_count))
        in
        List.filter_map
          (fun traitors ->
            if coalition = [] && traitors = [] then None else Some (coalition, traitors))
          traitor_sets)
      coalitions

  let search_deviations g ~k ~t test =
    let n = B.Normal_form.n_players g in
    let dims = B.Normal_form.actions g in
    List.find_map
      (fun (coalition, traitors) ->
        List.find_map
          (fun assignment -> test ~coalition ~traitors assignment)
          (B.Combin.joint_assignments (coalition @ traitors) dims))
      (coalition_traitor_pairs n ~k ~t)

  let blocking_gain variant ~eps g base deviated coalition =
    let gains =
      List.map
        (fun i ->
          let after = B.Mixed.expected_payoff_naive g deviated i in
          (i, after, after > base.(i) +. eps))
        coalition
    in
    let blocked =
      match variant with
      | R.Strong -> List.exists (fun (_, _, gained) -> gained) gains
      | R.Weak -> gains <> [] && List.for_all (fun (_, _, gained) -> gained) gains
    in
    if blocked then
      let victim, after, _ = List.find (fun (_, _, gained) -> gained) gains in
      Some (victim, after)
    else None

  let verdict_of = function Some v -> R.Fails v | None -> R.Holds

  let check_immunity ?(eps = 1e-9) g prof ~t =
    let base = baseline g prof in
    let n = B.Normal_form.n_players g in
    verdict_of
      (search_deviations g ~k:0 ~t (fun ~coalition:_ ~traitors assignment ->
           let deviated = deviate g prof assignment in
           List.find_map
             (fun i ->
               if List.mem i traitors then None
               else
                 let after = B.Mixed.expected_payoff_naive g deviated i in
                 if after < base.(i) -. eps then
                   Some
                     { R.coalition = []; traitors; deviation = assignment; victim = i;
                       before = base.(i); after }
                 else None)
             (List.init n Fun.id)))

  let check_robustness ?(variant = R.Strong) ?(eps = 1e-9) g prof ~k ~t =
    let base = baseline g prof in
    match check_immunity ~eps g prof ~t with
    | R.Fails v -> R.Fails v
    | R.Holds ->
      verdict_of
        (search_deviations g ~k ~t (fun ~coalition ~traitors assignment ->
             let deviated = deviate g prof assignment in
             Option.map
               (fun (victim, after) ->
                 { R.coalition; traitors; deviation = assignment; victim;
                   before = base.(victim); after })
               (blocking_gain variant ~eps g base deviated coalition)))

  let check_resilience ?variant ?eps g prof ~k = check_robustness ?variant ?eps g prof ~k ~t:0
end

(* A mixed profile carved from the same payoff draw: negative entries
   zeroed (sparse supports), degenerate rows replaced by a point mass. *)
let mixed_profile_of_draw payoffs =
  Array.init 3 (fun i ->
      let s =
        Array.init 2 (fun a ->
            let x = payoffs.(((i * 2) + a + 1) mod 8) in
            if x < 0.0 then 0.0 else x)
      in
      let total = s.(0) +. s.(1) in
      if total = 0.0 then [| 1.0; 0.0 |] else [| s.(0) /. total; s.(1) /. total |])

let kernel_agreement_pure_property =
  QCheck.Test.make ~count:60
    ~name:"robust: kernel verdicts (incl. witness) = pre-swap reference, pure profiles"
    QCheck.(array_of_size (Gen.return 8) (float_range (-3.0) 3.0))
    (fun payoffs ->
      let g = random_game payoffs in
      let ok = ref true in
      B.Normal_form.iter_profiles g (fun p ->
          let prof = B.Mixed.pure_profile g p in
          if
            R.check_robustness g prof ~k:2 ~t:1 <> Ref_impl.check_robustness g prof ~k:2 ~t:1
            || R.check_resilience g prof ~k:2 <> Ref_impl.check_resilience g prof ~k:2
            || R.check_resilience ~variant:R.Weak g prof ~k:2
               <> Ref_impl.check_resilience ~variant:R.Weak g prof ~k:2
            || R.check_immunity g prof ~t:2 <> Ref_impl.check_immunity g prof ~t:2
          then ok := false);
      !ok)

let kernel_agreement_mixed_property =
  QCheck.Test.make ~count:60
    ~name:"robust: kernel verdicts (incl. witness) = pre-swap reference, mixed profiles"
    QCheck.(array_of_size (Gen.return 8) (float_range (-3.0) 3.0))
    (fun payoffs ->
      let g = random_game payoffs in
      let prof = mixed_profile_of_draw payoffs in
      R.check_robustness g prof ~k:2 ~t:1 = Ref_impl.check_robustness g prof ~k:2 ~t:1
      && R.check_resilience g prof ~k:2 = Ref_impl.check_resilience g prof ~k:2
      && R.check_immunity g prof ~t:1 = Ref_impl.check_immunity g prof ~t:1)

let test_sweep_jobs_threading () =
  (* The profile sweeps share one pool; parallel must equal serial exactly. *)
  let g = B.Games.bargaining 4 in
  let eq_serial = R.robust_pure_equilibria g ~k:2 ~t:0 in
  let eq_par = R.robust_pure_equilibria ~jobs:4 g ~k:2 ~t:0 in
  Alcotest.(check (list (array int))) "robust_pure_equilibria jobs=4 = serial" eq_serial eq_par;
  let target = Array.make 4 2.0 in
  let pun_serial = R.find_punishment g ~target ~budget:1 in
  let pun_par = R.find_punishment ~jobs:4 g ~target ~budget:1 in
  Alcotest.(check (option (array int))) "find_punishment jobs=4 = serial" pun_serial pun_par

let suite =
  [
    Alcotest.test_case "coordination: Nash, not 2-resilient" `Quick
      test_coordination_is_nash_not_2resilient;
    Alcotest.test_case "coordination: violation witness" `Quick test_coordination_violation_witness;
    Alcotest.test_case "coordination: max resilience" `Quick test_coordination_max_resilience;
    Alcotest.test_case "bargaining: resilient, not immune" `Quick
      test_bargaining_resilient_not_immune;
    Alcotest.test_case "bargaining: immunity witness" `Quick test_bargaining_immunity_witness;
    Alcotest.test_case "Nash = (1,0)-robust" `Quick test_nash_equals_10_robust;
    Alcotest.test_case "0-resilience trivial" `Quick test_zero_resilience_trivial;
    Alcotest.test_case "weak vs strong variants" `Quick test_weak_vs_strong_variant;
    Alcotest.test_case "constant game fully immune" `Quick test_immunity_of_constant_game;
    Alcotest.test_case "robust pure equilibria (PD)" `Quick test_robust_pure_equilibria_pd;
    Alcotest.test_case "robustness combines both" `Quick test_robustness_combines;
    Alcotest.test_case "punishment: bargaining" `Quick test_punishment_bargaining;
    Alcotest.test_case "punishment: impossible" `Quick test_punishment_impossible;
    Alcotest.test_case "mixed profile robustness" `Quick test_mixed_profile_robustness;
    Alcotest.test_case "sweeps: jobs threading" `Quick test_sweep_jobs_threading;
    QCheck_alcotest.to_alcotest kernel_agreement_pure_property;
    QCheck_alcotest.to_alcotest kernel_agreement_mixed_property;
    QCheck_alcotest.to_alcotest resilience_monotone_property;
    QCheck_alcotest.to_alcotest immunity_monotone_property;
    QCheck_alcotest.to_alcotest nash_iff_1resilient_property;
    QCheck_alcotest.to_alcotest parallel_agrees_with_serial_property;
    QCheck_alcotest.to_alcotest k1_resilience_is_unilateral_nash_property;
  ]
