module B = Beyond_nash
module N = B.Sync_net
module E = B.Eig
module DS = B.Dolev_strong

(* {1 Sync_net} *)

(* Flooding protocol: everyone broadcasts its id in round 1; state = set of
   ids heard. *)
let flood n =
  {
    N.init = (fun me -> [ me ]);
    send = (fun ~round ~me _ -> if round = 1 then [ (N.All, me) ] else []);
    recv = (fun ~round:_ ~me:_ heard inbox -> List.sort_uniq compare (heard @ List.map snd inbox));
    output = (fun ~me:_ heard -> if List.length heard = n then Some heard else None);
  }

let test_flood_all_hear_all () =
  let r = N.run ~n:4 ~rounds:1 (flood 4) in
  Array.iter
    (function
      | Some heard -> Alcotest.(check (list int)) "heard all" [ 0; 1; 2; 3 ] heard
      | None -> Alcotest.fail "should have heard everyone")
    r.N.outputs

let test_message_count () =
  let r = N.run ~n:4 ~rounds:1 (flood 4) in
  (* 4 broadcasts of n=4 each. *)
  Alcotest.(check int) "messages" 16 r.N.messages_sent

let test_silent_adversary () =
  let adv = N.silent [ 2 ] in
  let r = N.run ~adversary:adv ~n:4 ~rounds:1 (flood 4) in
  (* Honest processes hear everyone but 2. *)
  Alcotest.(check bool) "p0 misses 2" true (r.N.outputs.(0) = None);
  Alcotest.(check bool) "corrupt output suppressed" true (r.N.outputs.(2) = None)

let test_unicast_delivery () =
  (* Ring: each sends its id to the next; after 1 round everyone knows its
     predecessor. *)
  let ring =
    {
      N.init = (fun _ -> None);
      send = (fun ~round ~me _ -> if round = 1 then [ (N.To ((me + 1) mod 3), me) ] else []);
      recv = (fun ~round:_ ~me:_ st inbox -> match inbox with [ (_, v) ] -> Some v | _ -> st);
      output = (fun ~me:_ st -> st);
    }
  in
  let r = N.run ~n:3 ~rounds:1 ring in
  Alcotest.(check (array (option int))) "predecessors" [| Some 2; Some 0; Some 1 |] r.N.outputs

let test_out_of_range_destination () =
  let bad =
    {
      N.init = (fun _ -> ());
      send = (fun ~round:_ ~me:_ _ -> [ (N.To 9, 0) ]);
      recv = (fun ~round:_ ~me:_ st _ -> st);
      output = (fun ~me:_ _ -> None);
    }
  in
  Alcotest.check_raises "destination out of range"
    (Invalid_argument "Sync_net.run: destination out of range") (fun () ->
      ignore (N.run ~n:3 ~rounds:1 bad))

(* {1 EIG} *)

let test_eig_no_faults () =
  List.iter
    (fun (n, t) ->
      let values = Array.init n (fun i -> i mod 2) in
      let r = E.run ~n ~t ~values ~default:0 () in
      Alcotest.(check bool) (Printf.sprintf "agreement n=%d t=%d" n t) true (E.agreement r))
    [ (4, 1); (5, 1); (7, 2) ]

let test_eig_validity_unanimous () =
  let r = E.run ~n:4 ~t:1 ~values:[| 1; 1; 1; 1 |] ~default:0 () in
  Alcotest.(check bool) "validity" true (E.validity ~honest_values:[ 1; 1; 1; 1 ] r);
  Array.iter
    (function Some v -> Alcotest.(check int) "decides 1" 1 v | None -> Alcotest.fail "decided")
    r.N.outputs

let test_eig_lying_adversary_safe_above_3t () =
  (* n = 4 > 3t: the lying adversary cannot break agreement or validity. *)
  let adv = E.lying_adversary ~n:4 ~corrupted:[ 3 ] ~claim:0 in
  let r = E.run ~adversary:adv ~n:4 ~t:1 ~values:[| 1; 1; 1; 0 |] ~default:0 () in
  Alcotest.(check bool) "agreement" true (E.agreement r);
  Alcotest.(check bool) "validity" true (E.validity ~honest_values:[ 1; 1; 1 ] r)

let test_eig_breaks_at_n_eq_3t () =
  (* n = 3, t = 1: the lying adversary flips the honest players' unanimous
     value to the default — validity violated. *)
  let adv = E.lying_adversary ~n:3 ~corrupted:[ 2 ] ~claim:0 in
  let r = E.run ~adversary:adv ~n:3 ~t:1 ~values:[| 1; 1; 0 |] ~default:0 () in
  Alcotest.(check bool) "validity broken" false (E.validity ~honest_values:[ 1; 1 ] r)

let test_eig_equivocation_sweep () =
  (* Randomized adversaries never break n=7, t=2. *)
  let rng = B.Prng.create 99 in
  for trial = 1 to 10 do
    let adv = E.equivocating_adversary ~n:7 ~corrupted:[ 5; 6 ] rng in
    let values = Array.init 7 (fun i -> (i + trial) mod 2) in
    let r = E.run ~adversary:adv ~n:7 ~t:2 ~values ~default:0 () in
    Alcotest.(check bool) "agreement holds" true (E.agreement r)
  done

let test_eig_t0_is_one_round () =
  let r = E.run ~n:3 ~t:0 ~values:[| 1; 1; 1 |] ~default:0 () in
  Alcotest.(check int) "rounds" 1 r.N.rounds_run;
  Alcotest.(check bool) "agree" true (E.agreement r)

let test_eig_crash_adversary () =
  (* Crashed (silent) processes are tolerated like Byzantine ones. *)
  let r = E.run ~adversary:(N.silent [ 1 ]) ~n:4 ~t:1 ~values:[| 1; 1; 1; 1 |] ~default:0 () in
  Alcotest.(check bool) "agreement" true (E.agreement r);
  Alcotest.(check bool) "validity" true (E.validity ~honest_values:[ 1; 1; 1 ] r)

(* {1 Dolev–Strong} *)

let mk_pki seed n =
  let rng = B.Prng.create seed in
  B.Hashing.Pki.create rng ~n

let test_ds_honest_sender () =
  let pki = mk_pki 1 4 in
  let r = DS.run ~pki ~n:4 ~t:1 ~sender:0 ~value:1 ~default:0 () in
  Alcotest.(check bool) "agreement" true (DS.agreement r);
  Alcotest.(check bool) "validity" true (DS.validity_sender ~sender_value:1 r)

let test_ds_equivocating_sender_agreement () =
  let pki = mk_pki 2 4 in
  let adv = DS.equivocating_sender ~pki ~sender:0 ~n:4 in
  let r = DS.run ~adversary:adv ~pki ~n:4 ~t:1 ~sender:0 ~value:1 ~default:9 () in
  Alcotest.(check bool) "agreement despite equivocation" true (DS.agreement r)

let test_ds_beats_eig_regime () =
  (* n = 3, t = 1 is impossible without signatures but fine with them. *)
  let pki = mk_pki 3 3 in
  let adv = DS.equivocating_sender ~pki ~sender:0 ~n:3 in
  let r = DS.run ~adversary:adv ~pki ~n:3 ~t:1 ~sender:0 ~value:1 ~default:9 () in
  Alcotest.(check bool) "agreement at n = 3t" true (DS.agreement r)

let test_ds_silent_sender () =
  let pki = mk_pki 4 4 in
  let r = DS.run ~adversary:(N.silent [ 0 ]) ~pki ~n:4 ~t:1 ~sender:0 ~value:1 ~default:7 () in
  Alcotest.(check bool) "agreement on default" true (DS.agreement r);
  Array.iteri
    (fun i o -> if i <> 0 then Alcotest.(check (option int)) "default" (Some 7) o)
    r.N.outputs

let test_ds_larger_t () =
  let pki = mk_pki 5 5 in
  let r = DS.run ~pki ~n:5 ~t:3 ~sender:2 ~value:1 ~default:0 () in
  Alcotest.(check bool) "agreement with t=3" true (DS.agreement r);
  Alcotest.(check bool) "validity" true (DS.validity_sender ~sender_value:1 r)

(* {1 Async_net schedulers}

   [fifo] was covered indirectly via E15; [random] and [delayer] only ran
   inside experiments until now. Minimal flooding consensus: everyone
   floods its value once and decides the minimum after hearing all n. *)

module A = B.Async_net

let async_min_flood ~n ~values =
  {
    A.init =
      (fun me -> ([ (me, values.(me)) ], List.init n (fun j -> (j, values.(me)))));
    on_message =
      (fun ~me:_ seen ~sender v ->
        if List.mem_assoc sender seen then (seen, []) else ((sender, v) :: seen, []));
    decided =
      (fun seen ->
        if List.length seen = n then
          Some (List.fold_left (fun acc (_, v) -> min acc v) max_int seen)
        else None);
  }

let test_async_random_decides_and_is_seeded () =
  let run seed =
    A.run ~n:4 ~scheduler:(A.random (B.Prng.create seed)) (async_min_flood ~n:4 ~values:[| 3; 1; 4; 2 |])
  in
  let r = run 5 in
  Alcotest.(check (array (option int))) "everyone decides the min"
    (Array.make 4 (Some 1)) r.A.decisions;
  let r' = run 5 in
  Alcotest.(check int) "same seed, same trajectory" r.A.steps r'.A.steps;
  (* The run halts at the step where the last process decides, so messages
     still in flight at that instant stay undelivered — deterministically. *)
  Alcotest.(check int) "same seed, same leftovers" r.A.undelivered r'.A.undelivered;
  Alcotest.(check int) "nothing dropped without faults" 0 r.A.dropped

let test_async_delayer_starves_then_fifo () =
  (* Direct scheduler-level unit test: with budget, the victim's message is
     starved; at budget exhaustion the choice degrades to fifo. *)
  let m s q = { A.sender = s; dest = 0; payload = (); seq = q } in
  let pending = [ m 0 0; m 1 1; m 1 2 ] in
  let budget = ref 1 in
  let sched = A.delayer ~victim:0 ~budget in
  Alcotest.(check int) "starves the victim while budget lasts" 1 (sched pending).A.seq;
  Alcotest.(check int) "budget spent" 0 !budget;
  Alcotest.(check int) "exhausted budget falls back to fifo" 0 (sched pending).A.seq;
  Alcotest.(check int) "budget not driven negative" 0 !budget

let test_async_delayer_victim_only_queue () =
  (* Only victim messages pending: delivered immediately, budget intact. *)
  let m q = { A.sender = 2; dest = 0; payload = (); seq = q } in
  let budget = ref 5 in
  Alcotest.(check int) "must deliver the victim's message" 3
    (A.delayer ~victim:2 ~budget [ m 4; m 3 ]).A.seq;
  Alcotest.(check int) "costs no budget" 5 !budget

let test_async_delayer_budget_linear_delay () =
  let steps budget_size =
    (A.run ~n:3
       ~scheduler:(A.delayer ~victim:0 ~budget:(ref budget_size))
       (async_min_flood ~n:3 ~values:[| 1; 2; 3 |]))
      .A.steps
  in
  let fifo_steps =
    (A.run ~n:3 ~scheduler:A.fifo (async_min_flood ~n:3 ~values:[| 1; 2; 3 |])).A.steps
  in
  Alcotest.(check int) "budget 0 = fifo" fifo_steps (steps 0);
  Alcotest.(check bool) "delay grows with the budget" true (steps 6 > steps 0);
  (* The victim has 3 outgoing messages; a budget of 6 can starve each
     delivery but never past the point where only victim messages remain. *)
  Alcotest.(check (option int)) "consensus still reached"
    (Some 1)
    (A.run ~n:3
       ~scheduler:(A.delayer ~victim:0 ~budget:(ref 6))
       (async_min_flood ~n:3 ~values:[| 1; 2; 3 |]))
      .A.decisions.(1)

let test_async_empty_queue_terminates () =
  (* No initial messages and nobody ever decides: the run must stop at
     once rather than spin against max_steps. *)
  let mute =
    {
      A.init = (fun _ -> ((), []));
      on_message = (fun ~me:_ () ~sender:_ _ -> ((), []));
      decided = (fun () -> None);
    }
  in
  let r = A.run ~n:3 ~scheduler:A.fifo mute in
  Alcotest.(check int) "zero steps" 0 r.A.steps;
  Alcotest.(check int) "nothing pending" 0 r.A.undelivered

let test_async_fault_filter_drop_stalls () =
  let r =
    A.run ~n:3 ~scheduler:A.fifo
      ~faults:(fun ~step:_ _ -> A.Drop)
      (async_min_flood ~n:3 ~values:[| 1; 2; 3 |])
  in
  Alcotest.(check int) "every delivery dropped" 9 r.A.dropped;
  Alcotest.(check bool) "nobody decided" true
    (Array.for_all (( = ) None) r.A.decisions)

let test_async_fault_filter_duplicate_harmless () =
  let rng = B.Prng.create 3 in
  let r =
    A.run ~n:3 ~scheduler:A.fifo
      ~faults:(B.Faults.async_filter rng ~drop:0.0 ~dup:0.4)
      (async_min_flood ~n:3 ~values:[| 1; 2; 3 |])
  in
  Alcotest.(check (array (option int))) "duplication is idempotent here"
    (Array.make 3 (Some 1)) r.A.decisions;
  Alcotest.(check int) "nothing dropped" 0 r.A.dropped

let eig_agreement_property =
  QCheck.Test.make ~count:25 ~name:"eig: agreement for random values, n=4, t=1, lying adversary"
    QCheck.(pair (int_range 0 15) bool)
    (fun (bits, claim) ->
      let values = Array.init 4 (fun i -> (bits lsr i) land 1) in
      let adv = E.lying_adversary ~n:4 ~corrupted:[ 3 ] ~claim:(if claim then 1 else 0) in
      let r = E.run ~adversary:adv ~n:4 ~t:1 ~values ~default:0 () in
      E.agreement r && E.validity ~honest_values:[ values.(0); values.(1); values.(2) ] r)

let suite =
  [
    Alcotest.test_case "sync: flood" `Quick test_flood_all_hear_all;
    Alcotest.test_case "sync: message count" `Quick test_message_count;
    Alcotest.test_case "sync: silent adversary" `Quick test_silent_adversary;
    Alcotest.test_case "sync: unicast" `Quick test_unicast_delivery;
    Alcotest.test_case "sync: bad destination" `Quick test_out_of_range_destination;
    Alcotest.test_case "eig: no faults" `Quick test_eig_no_faults;
    Alcotest.test_case "eig: unanimous validity" `Quick test_eig_validity_unanimous;
    Alcotest.test_case "eig: safe above 3t" `Quick test_eig_lying_adversary_safe_above_3t;
    Alcotest.test_case "eig: breaks at n = 3t" `Quick test_eig_breaks_at_n_eq_3t;
    Alcotest.test_case "eig: equivocation sweep" `Slow test_eig_equivocation_sweep;
    Alcotest.test_case "eig: t=0" `Quick test_eig_t0_is_one_round;
    Alcotest.test_case "eig: crash adversary" `Quick test_eig_crash_adversary;
    Alcotest.test_case "ds: honest sender" `Quick test_ds_honest_sender;
    Alcotest.test_case "ds: equivocating sender" `Quick test_ds_equivocating_sender_agreement;
    Alcotest.test_case "ds: n = 3t with PKI" `Quick test_ds_beats_eig_regime;
    Alcotest.test_case "ds: silent sender" `Quick test_ds_silent_sender;
    Alcotest.test_case "ds: t = 3" `Quick test_ds_larger_t;
    Alcotest.test_case "async: random scheduler seeded" `Quick
      test_async_random_decides_and_is_seeded;
    Alcotest.test_case "async: delayer starves then fifo" `Quick
      test_async_delayer_starves_then_fifo;
    Alcotest.test_case "async: delayer victim-only queue" `Quick
      test_async_delayer_victim_only_queue;
    Alcotest.test_case "async: delayer budget = linear delay" `Quick
      test_async_delayer_budget_linear_delay;
    Alcotest.test_case "async: empty queue terminates" `Quick test_async_empty_queue_terminates;
    Alcotest.test_case "async: drop filter stalls consensus" `Quick
      test_async_fault_filter_drop_stalls;
    Alcotest.test_case "async: duplicate filter harmless" `Quick
      test_async_fault_filter_duplicate_harmless;
    QCheck_alcotest.to_alcotest eig_agreement_property;
  ]
