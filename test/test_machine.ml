module B = Beyond_nash
module MG = B.Machine_game
module P = B.Primality

let check_float = Alcotest.(check (float 1e-9))

(* {1 Machine} *)

let test_deterministic_machine () =
  let m = B.Machine.deterministic "inc" (fun x -> x + 1) in
  Alcotest.(check bool) "point mass" true (B.Dist.support (m.B.Machine.act 4) = [ 5 ]);
  check_float "default complexity" 1.0 (m.B.Machine.complexity 0);
  Alcotest.(check bool) "not randomized" false m.B.Machine.randomized

let test_randomizing_machine () =
  let m = B.Machine.randomizing "coin" (fun _ -> B.Dist.uniform [ 0; 1 ]) in
  check_float "default complexity 2" 2.0 (m.B.Machine.complexity 0);
  Alcotest.(check bool) "randomized" true m.B.Machine.randomized

(* {1 Machine_game} *)

let simple_mg charge =
  (* Both players pick "low" (action 0, complexity 1) or "high" (action 1,
     complexity 3); base payoff = own action value. *)
  let low = B.Machine.constant "low" ~complexity:(fun _ -> 1.0) 0 in
  let high = B.Machine.constant "high" ~complexity:(fun _ -> 3.0) 1 in
  MG.simple
    ~machines:[| [| low; high |]; [| low; high |] |]
    ~base:(fun acts -> [| float_of_int acts.(0); float_of_int acts.(1) |])
    ~charge:[| charge; charge |]

let test_expected_utility () =
  let g = simple_mg 0.0 in
  check_float "high action free computation" 1.0 (MG.expected_utility g ~choice:[| 1; 0 |] ~player:0);
  let g' = simple_mg 1.0 in
  (* high: 1 - 3 = -2; low: 0 - 1 = -1. *)
  check_float "charged" (-2.0) (MG.expected_utility g' ~choice:[| 1; 0 |] ~player:0)

let test_nash_flips_with_charge () =
  let free = simple_mg 0.0 in
  Alcotest.(check bool) "high-high Nash when free" true (MG.is_nash free ~choice:[| 1; 1 |]);
  let charged = simple_mg 1.0 in
  Alcotest.(check bool) "low-low Nash when charged" true (MG.is_nash charged ~choice:[| 0; 0 |]);
  Alcotest.(check bool) "high-high not Nash when charged" false
    (MG.is_nash charged ~choice:[| 1; 1 |])

let test_best_deviation () =
  let charged = simple_mg 1.0 in
  match MG.best_deviation charged ~choice:[| 1; 1 |] ~player:0 with
  | Some (0, u) -> check_float "deviate to low" (-1.0) u
  | Some _ | None -> Alcotest.fail "expected deviation to machine 0"

let test_nash_equilibria_enumeration () =
  let free = simple_mg 0.0 in
  Alcotest.(check int) "unique equilibrium when free" 1 (List.length (MG.nash_equilibria free))

let test_to_normal_form_consistency () =
  let g = simple_mg 1.0 in
  let nf = MG.to_normal_form g in
  B.Normal_form.iter_profiles nf (fun p ->
      check_float "payoffs agree"
        (MG.expected_utility g ~choice:p ~player:0)
        (B.Normal_form.payoff nf p 0))

(* {1 Primality} *)

let trial_division n =
  if n < 2 then false
  else begin
    let rec go d = d * d > n || (n mod d <> 0 && go (d + 1)) in
    go 2
  end

let miller_rabin_matches_trial_division =
  QCheck.Test.make ~count:300 ~name:"primality: Miller-Rabin = trial division"
    QCheck.(int_range 2 200000)
    (fun n -> P.is_prime n = trial_division n)

let test_known_primes () =
  List.iter
    (fun p -> Alcotest.(check bool) (string_of_int p) true (P.is_prime p))
    [ 2; 3; 5; 104729; 2147483647 ];
  List.iter
    (fun c -> Alcotest.(check bool) (string_of_int c) false (P.is_prime c))
    [ 1; 4; 100; 104730; 2147483645 ]

let test_carmichael_numbers () =
  (* Carmichael numbers fool Fermat but not Miller-Rabin. *)
  List.iter
    (fun c -> Alcotest.(check bool) (string_of_int c) false (P.is_prime c))
    [ 561; 1105; 1729; 2465; 41041; 825265 ]

let test_counted_cost_grows () =
  (* Primes cost more to certify than typical composites, and bigger
     numbers cost more. *)
  let _, c_small = P.counted_is_prime 104729 in
  let _, c_big = P.counted_is_prime 2147483647 in
  Alcotest.(check bool) "bigger prime costs more" true (c_big > c_small);
  Alcotest.(check bool) "positive cost" true (c_small > 0)

let test_primality_game_crossover () =
  let rng = B.Prng.create 77 in
  let small = P.default_spec ~bits:8 ~cost_per_op:0.05 in
  let us_small = P.utilities (B.Prng.split rng 8) small in
  Alcotest.(check bool) "solve wins at 8 bits" true
    (List.assoc "solve" us_small > List.assoc "safe" us_small);
  let large = P.default_spec ~bits:40 ~cost_per_op:0.05 in
  let us_large = P.utilities (B.Prng.split rng 40) large in
  Alcotest.(check bool) "safe wins at 40 bits" true
    (List.assoc "safe" us_large > List.assoc "solve" us_large)

let test_primality_equilibrium_choice () =
  let rng = B.Prng.create 78 in
  Alcotest.(check int) "equilibrium at 8 bits is solve (index 0)" 0
    (P.equilibrium_choice (B.Prng.split rng 8) (P.default_spec ~bits:8 ~cost_per_op:0.05));
  Alcotest.(check int) "equilibrium at 40 bits is safe (index 1)" 1
    (P.equilibrium_choice (B.Prng.split rng 40) (P.default_spec ~bits:40 ~cost_per_op:0.05))

let test_crossover_bits_found () =
  let rng = B.Prng.create 79 in
  match P.crossover_bits rng ~cost_per_op:0.05 with
  | Some b -> Alcotest.(check bool) "crossover in a sane range" true (b > 8 && b < 45)
  | None -> Alcotest.fail "crossover should exist at this cost"

let test_guessing_is_fair_bet () =
  let rng = B.Prng.create 80 in
  let us = P.utilities rng (P.default_spec ~bits:16 ~cost_per_op:0.05) in
  (* Balanced sampling: blind guessing nets ~0 (minus the tiny base cost). *)
  Alcotest.(check bool) "guess-prime ~ 0" true (Float.abs (List.assoc "guess-prime" us) < 0.5)

(* {1 Computational roshambo} *)

let test_comp_roshambo_no_equilibrium () =
  let g = B.Comp_roshambo.game () in
  Alcotest.(check bool) "no equilibrium" false (B.Comp_roshambo.has_equilibrium g)

let test_comp_roshambo_certificate_complete () =
  let g = B.Comp_roshambo.game () in
  match B.Comp_roshambo.certificate g with
  | None -> Alcotest.fail "nonexistence certificate should exist"
  | Some cert ->
    (* 4 machines each -> 16 profiles, every one refuted. *)
    Alcotest.(check int) "all profiles covered" 16 (List.length cert);
    List.iter
      (fun (choice, player, machine) ->
        let alt = Array.copy choice in
        alt.(player) <- machine;
        let before = MG.expected_utility g ~choice ~player in
        let after = MG.expected_utility g ~choice:alt ~player in
        Alcotest.(check bool) "deviation strictly profitable" true (after > before +. 1e-9))
      cert

let test_comp_roshambo_extra_randomizers () =
  let g = B.Comp_roshambo.game ~extra_randomizers:true () in
  Alcotest.(check bool) "still no equilibrium" false (B.Comp_roshambo.has_equilibrium g)

let test_classical_roshambo_has_equilibrium () =
  let eqs = B.Comp_roshambo.classical_equilibria () in
  Alcotest.(check int) "classical: unique uniform NE" 1 (List.length eqs)

let suite =
  [
    Alcotest.test_case "machine: deterministic" `Quick test_deterministic_machine;
    Alcotest.test_case "machine: randomizing" `Quick test_randomizing_machine;
    Alcotest.test_case "machine game: expected utility" `Quick test_expected_utility;
    Alcotest.test_case "machine game: charge flips Nash" `Quick test_nash_flips_with_charge;
    Alcotest.test_case "machine game: best deviation" `Quick test_best_deviation;
    Alcotest.test_case "machine game: equilibria" `Quick test_nash_equilibria_enumeration;
    Alcotest.test_case "machine game: to normal form" `Quick test_to_normal_form_consistency;
    QCheck_alcotest.to_alcotest miller_rabin_matches_trial_division;
    Alcotest.test_case "primality: known values" `Quick test_known_primes;
    Alcotest.test_case "primality: Carmichael" `Quick test_carmichael_numbers;
    Alcotest.test_case "primality: cost grows" `Quick test_counted_cost_grows;
    Alcotest.test_case "primality: crossover" `Slow test_primality_game_crossover;
    Alcotest.test_case "primality: equilibrium choice" `Slow test_primality_equilibrium_choice;
    Alcotest.test_case "primality: crossover bits" `Slow test_crossover_bits_found;
    Alcotest.test_case "primality: fair bet" `Quick test_guessing_is_fair_bet;
    Alcotest.test_case "roshambo: no computational NE" `Quick test_comp_roshambo_no_equilibrium;
    Alcotest.test_case "roshambo: certificate" `Quick test_comp_roshambo_certificate_complete;
    Alcotest.test_case "roshambo: extra randomizers" `Quick test_comp_roshambo_extra_randomizers;
    Alcotest.test_case "roshambo: classical NE exists" `Quick
      test_classical_roshambo_has_equilibrium;
  ]
