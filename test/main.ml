(* Aggregated test runner for every library in the reproduction. *)
let () =
  Alcotest.run "beyond_nash"
    [
      ("util", Test_util.suite);
      ("pool", Test_pool.suite);
      ("lp", Test_lp.suite);
      ("game", Test_game.suite);
      ("bayesian", Test_bayesian.suite);
      ("extensive", Test_extensive.suite);
      ("robust", Test_robust.suite);
      ("crypto", Test_crypto.suite);
      ("dist-byz", Test_dist_byz.suite);
      ("faults", Test_faults.suite);
      ("mediator", Test_mediator.suite);
      ("async-mediator", Test_async_mediator.suite);
      ("machine", Test_machine.suite);
      ("repeated", Test_repeated.suite);
      ("awareness", Test_awareness.suite);
      ("scrip-p2p", Test_scrip_p2p.suite);
      ("soa", Test_soa.suite);
      ("steady-state", Test_steady_state.suite);
      ("solution", Test_solution.suite);
      ("correlated", Test_correlated.suite);
      ("rational-ss", Test_rational_ss.suite);
      ("protocols2", Test_protocols2.suite);
      ("canned-sunspot", Test_canned_sunspot.suite);
      ("rationalizable-parse", Test_rationalizable_parse.suite);
      ("experiments", Test_experiments.suite);
      ("obs", Test_obs.suite);
      ("determinism", Test_determinism.suite);
      ("json", Test_json.suite);
      ("lint", Test_lint.suite);
    ]
