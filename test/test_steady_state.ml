module B = Beyond_nash
module SS = B.Steady_state

(* {1 Analytic distribution} *)

let test_max_entropy_normalized () =
  let p = SS.max_entropy ~threshold:5 ~money_per_agent:2.5 in
  Alcotest.(check int) "k + 1 bins" 6 (Array.length p);
  Alcotest.(check (float 1e-9)) "sums to 1" 1.0 (Array.fold_left ( +. ) 0.0 p);
  Array.iter (fun q -> Alcotest.(check bool) "probability" true (q >= 0.0 && q <= 1.0)) p

let test_max_entropy_mean () =
  List.iter
    (fun m ->
      let p = SS.max_entropy ~threshold:8 ~money_per_agent:m in
      Alcotest.(check (float 1e-6)) (Printf.sprintf "mean %.2f" m) m (SS.mean_of p))
    [ 0.5; 2.0; 4.0; 6.3; 7.5 ]

let test_max_entropy_uniform_at_half () =
  (* m = k/2 means λ = 1: the uniform distribution on {0 … k}. *)
  let p = SS.max_entropy ~threshold:5 ~money_per_agent:2.5 in
  Array.iter
    (fun q -> Alcotest.(check (float 1e-9)) "uniform" (1.0 /. 6.0) q)
    p

let test_max_entropy_monotone_shape () =
  (* m < k/2 tilts mass to the poor side (λ < 1, decreasing P). *)
  let p = SS.max_entropy ~threshold:5 ~money_per_agent:1.0 in
  for j = 0 to 4 do
    Alcotest.(check bool) "decreasing" true (p.(j) > p.(j + 1))
  done

let test_max_entropy_rejects () =
  Alcotest.check_raises "m >= k"
    (Invalid_argument "Steady_state.max_entropy: need 0 < money_per_agent < threshold")
    (fun () -> ignore (SS.max_entropy ~threshold:3 ~money_per_agent:3.0))

(* {1 Chi-square machinery} *)

let test_critical_99_sanity () =
  (* Table values: χ²₀.₉₉(5) = 15.09, χ²₀.₉₉(10) = 23.21. *)
  Alcotest.(check bool) "df=5 near 15.09" true (Float.abs (SS.critical_99 ~df:5 -. 15.09) < 0.3);
  Alcotest.(check bool) "df=10 near 23.21" true (Float.abs (SS.critical_99 ~df:10 -. 23.21) < 0.3)

let test_chi_square_exact_fit () =
  let expected = [| 0.25; 0.25; 0.25; 0.25 |] in
  let g = SS.chi_square ~observed:[| 250; 250; 250; 250 |] ~expected in
  Alcotest.(check (float 1e-9)) "X^2 = 0 on exact fit" 0.0 g.SS.stat;
  Alcotest.(check bool) "pass" true g.SS.pass;
  Alcotest.(check (float 1e-9)) "tv = 0" 0.0 g.SS.tv

let test_chi_square_detects_skew () =
  let expected = [| 0.25; 0.25; 0.25; 0.25 |] in
  let g = SS.chi_square ~observed:[| 700; 100; 100; 100 |] ~expected in
  Alcotest.(check bool) "reject" false g.SS.pass;
  Alcotest.(check bool) "tv large" true (g.SS.tv > 0.3)

let test_chi_square_merges_small_bins () =
  (* Tiny expected tail bins must be merged, shrinking df below bins-1. *)
  let expected = [| 0.5; 0.49; 0.005; 0.005 |] in
  let g = SS.chi_square ~observed:[| 50; 49; 1; 0 |] ~expected in
  Alcotest.(check bool) "df < 3 after merging" true (g.SS.df < 3);
  Alcotest.(check bool) "still passes" true g.SS.pass

(* {1 The simulator against the law} *)

let threshold = 5
let money = 2.5

let run_gof ~money_sim ~money_law =
  let n = 10_000 in
  let params = { (B.Scrip.default_params ~n) with B.Scrip.rounds = 0 } in
  let st =
    B.Scrip_soa.run ~jobs:2 ~shards:16 ~seed:2008 ~steps:200 ~params
      ~kind_of:(fun _ -> B.Scrip.Standard threshold)
      ~money_per_agent:money_sim ()
  in
  let observed = Array.sub st.B.Scrip_soa.dist 0 (threshold + 1) in
  SS.chi_square ~observed ~expected:(SS.max_entropy ~threshold ~money_per_agent:money_law)

let test_simulator_matches_law () =
  let g = run_gof ~money_sim:money ~money_law:money in
  Alcotest.(check bool)
    (Printf.sprintf "chi-square passes (X^2 = %.2f <= %.2f)" g.SS.stat g.SS.critical)
    true g.SS.pass;
  Alcotest.(check bool) "tv small" true (g.SS.tv < 0.02)

let test_simulator_rejects_wrong_law () =
  (* Same run scored against the law for a different money supply: the
     test must have power, not just fail to reject. *)
  let g = run_gof ~money_sim:money ~money_law:1.2 in
  Alcotest.(check bool) "wrong money supply rejected" false g.SS.pass

let test_gof_helper_consistent () =
  let n = 10_000 in
  let params = { (B.Scrip.default_params ~n) with B.Scrip.rounds = 0 } in
  let st =
    B.Scrip_soa.run ~jobs:1 ~shards:16 ~seed:2008 ~steps:200 ~params
      ~kind_of:(fun _ -> B.Scrip.Standard threshold)
      ~money_per_agent:money ()
  in
  let g = B.Scrip_soa.goodness_of_fit st ~threshold ~money_per_agent:money in
  Alcotest.(check bool) "wrapper passes too" true g.SS.pass

let suite =
  [
    Alcotest.test_case "max-entropy: normalized" `Quick test_max_entropy_normalized;
    Alcotest.test_case "max-entropy: mean pinned" `Quick test_max_entropy_mean;
    Alcotest.test_case "max-entropy: uniform at k/2" `Quick test_max_entropy_uniform_at_half;
    Alcotest.test_case "max-entropy: shape" `Quick test_max_entropy_monotone_shape;
    Alcotest.test_case "max-entropy: domain" `Quick test_max_entropy_rejects;
    Alcotest.test_case "chi-square: critical values" `Quick test_critical_99_sanity;
    Alcotest.test_case "chi-square: exact fit" `Quick test_chi_square_exact_fit;
    Alcotest.test_case "chi-square: power" `Quick test_chi_square_detects_skew;
    Alcotest.test_case "chi-square: bin merging" `Quick test_chi_square_merges_small_bins;
    Alcotest.test_case "simulator: matches analytic law" `Slow test_simulator_matches_law;
    Alcotest.test_case "simulator: rejects wrong law" `Slow test_simulator_rejects_wrong_law;
    Alcotest.test_case "simulator: gof wrapper" `Slow test_gof_helper_consistent;
  ]
