(* Bn_lint: the determinism/purity static-analysis pass.

   Per-rule fixtures (positive, negative, suppressed), the A001
   suppression audit, a pinned golden --json report for a small fixture
   tree, and — the point of the exercise — the assertion that the repo
   itself is lint-clean, which is what makes the determinism contract a
   property of every commit rather than of the golden tests that happen
   to run. *)

module L = Bn_lint.Lint
module F = Bn_lint.Finding

let lint path src = L.lint_source ~file:path src
let unsup fs = List.filter (fun (f : F.t) -> f.suppressed = None) fs
let rules fs = List.map (fun (f : F.t) -> f.rule) (unsup fs)

let check_rules msg expected fs = Alcotest.(check (list string)) msg expected (rules fs)

(* {1 D-rules} *)

let test_d001 () =
  let fs = lint "lib/game/jitter.ml" "let x () = Random.int 10\n" in
  check_rules "Random flagged" [ "D001" ] fs;
  let f = List.hd (unsup fs) in
  Alcotest.(check (pair int int)) "location" (1, 11) (f.line, f.col);
  check_rules "Stdlib.Random too" [ "D001" ]
    (lint "lib/game/jitter.ml" "let x () = Stdlib.Random.int 10\n");
  check_rules "module alias too" [ "D001" ] (lint "lib/game/jitter.ml" "module R = Random\n");
  check_rules "fine inside Prng" [] (lint "lib/util/prng.ml" "let x () = Random.int 10\n")

let test_d002 () =
  check_rules "wall clock flagged" [ "D002" ]
    (lint "lib/robust/t.ml" "let t () = Unix.gettimeofday ()\n");
  check_rules "Sys.time flagged" [ "D002" ] (lint "test/t.ml" "let t () = Sys.time ()\n");
  check_rules "bench may time" [] (lint "bench/main.ml" "let t () = Unix.gettimeofday ()\n")

let test_d003 () =
  check_rules "iter flagged" [ "D003" ]
    (lint "lib/game/t.ml" "let f t = Hashtbl.iter (fun _ _ -> ()) t\n");
  check_rules "fold flagged" [ "D003" ]
    (lint "bin/t.ml" "let f t = Hashtbl.fold (fun _ _ n -> n + 1) t 0\n");
  check_rules "membership fine" [] (lint "lib/game/t.ml" "let f t = Hashtbl.mem t 3\n")

let test_d004_d005 () =
  check_rules "Marshal flagged" [ "D004" ]
    (lint "lib/game/t.ml" "let f x = Marshal.to_string x []\n");
  check_rules "Obj.magic flagged" [ "D005" ] (lint "lib/game/t.ml" "let f x = Obj.magic x\n");
  check_rules "Obj.repr alone is not D005" [] (lint "lib/game/t.ml" "let f x = Obj.repr x\n")

(* {1 P-rules} *)

let test_p001 () =
  check_rules "toplevel Hashtbl.create" [ "P001" ]
    (lint "lib/game/t.ml" "let cache = Hashtbl.create 16\n");
  check_rules "toplevel ref" [ "P001" ] (lint "lib/game/t.ml" "let count = ref 0\n");
  check_rules "toplevel ref inside submodule" [ "P001" ]
    (lint "lib/game/t.ml" "module M = struct let count = ref 0 end\n");
  check_rules "local state is fine" []
    (lint "lib/game/t.ml" "let f () = let c = ref 0 in incr c; !c\n");
  check_rules "lib/util may hold state" [] (lint "lib/util/t.ml" "let cache = Hashtbl.create 16\n");
  check_rules "lib/obs may hold state" [] (lint "lib/obs/t.ml" "let count = ref 0\n")

let test_p002 () =
  check_rules "Atomic flagged" [ "P002" ] (lint "lib/game/t.ml" "let f x = Atomic.make x\n");
  check_rules "Domain.spawn and join both flagged" [ "P002"; "P002" ]
    (lint "lib/mediator/t.ml" "let f g = Domain.join (Domain.spawn g)\n");
  check_rules "Pool is the site" [] (lint "lib/util/pool.ml" "let f g = Domain.spawn g\n");
  check_rules "Obs is the site" [] (lint "lib/obs/obs.ml" "let t = Atomic.make false\n")

let test_p004 () =
  check_rules "Bigarray value use flagged" [ "P004" ]
    (lint "lib/robust/t.ml" "let f a = Bigarray.Array1.get a 0\n");
  check_rules "Bigarray module alias flagged" [ "P004" ]
    (lint "lib/dist_sim/t.ml" "module B = Bigarray\n");
  check_rules "Normal_form is a kernel site" []
    (lint "lib/game/normal_form.ml" "let f a = Bigarray.Array1.get a 0\n");
  check_rules "Simplex is a kernel site" []
    (lint "lib/lp/simplex.ml" "let f a = Bigarray.Array1.dim a\n");
  check_rules "SoA store is a kernel site" []
    (lint "lib/agents/soa.ml" "let f a = Bigarray.Array1.get a 0\n");
  check_rules "SoA simulator kernels are kernel sites" []
    (lint "lib/scrip/scrip_soa.ml" "let f a = Bigarray.Array1.get a 0\n"
     @ lint "lib/p2p/gnutella_soa.ml" "let f a = Bigarray.Array1.dim a\n");
  check_rules "experiments must go through the Soa API" [ "P004" ]
    (lint "lib/experiments/t.ml" "let f a = Bigarray.Array1.get a 0\n");
  check_rules "drivers may use Bigarray" []
    (lint "bin/t.ml" "let f a = Bigarray.Array1.get a 0\n")

let test_p005 () =
  check_rules "Gc.quick_stat flagged in lib" [ "P005" ]
    (lint "lib/game/t.ml" "let s () = Gc.quick_stat ()\n");
  check_rules "Gc.compact flagged in bin" [ "P005" ] (lint "bin/t.ml" "let f () = Gc.compact ()\n");
  check_rules "module alias flagged" [ "P005" ] (lint "lib/scrip/t.ml" "module G = Gc\n");
  check_rules "Obs is the probe site" []
    (lint "lib/obs/obs.ml" "let s () = Gc.quick_stat ()\n");
  check_rules "allow suppresses with reason" []
    (lint "lib/game/t.ml"
       "[@@@lint.allow \"P005\" \"heap sizing experiment, reviewed\"]\nlet f () = Gc.compact ()\n")

let test_p003 () =
  check_rules "print_endline flagged in lib" [ "P003" ]
    (lint "lib/game/t.ml" "let f () = print_endline \"hi\"\n");
  check_rules "Printf.printf flagged in lib" [ "P003" ]
    (lint "lib/game/t.ml" "let f () = Printf.printf \"%d\" 3\n");
  check_rules "Out is the site" []
    (lint "lib/util/out.ml" "let print_string s = Stdlib.print_string s\n");
  check_rules "drivers own stdout" [] (lint "bin/t.ml" "let f () = print_endline \"hi\"\n");
  check_rules "Out-qualified is the sanctioned path" []
    (lint "lib/game/t.ml" "let f () = Bn_util.Out.print_endline \"hi\"\n");
  check_rules "sprintf is pure" []
    (lint "lib/game/t.ml" "let f n = Printf.sprintf \"%d\" n\n")

(* {1 H-rules} *)

let test_h002 () =
  check_rules "open List flagged" [ "H002" ] (lint "lib/game/t.ml" "open List\nlet f = map\n");
  check_rules "open in .mli flagged" [ "H002" ] (lint "lib/game/t.mli" "open Printf\n");
  check_rules "local open is scoped enough" []
    (lint "lib/game/t.ml" "let f x = List.(map succ x)\n");
  check_rules "project opens are fine" [] (lint "lib/game/t.ml" "open Bn_util\nlet x = 1\n")

let test_e000 () =
  check_rules "garbage yields E000" [ "E000" ] (lint "lib/game/t.ml" "let let let\n")

(* {1 Suppression and the A001 audit} *)

let test_allow_suppresses () =
  let fs =
    lint "lib/game/t.ml"
      "[@@@lint.allow \"D003\" \"reviewed: sorted before escaping\"]\n\
       let f t = Hashtbl.fold (fun k _ acc -> k :: acc) t []\n"
  in
  check_rules "nothing unsuppressed" [] fs;
  match List.find_opt (fun (f : F.t) -> f.suppressed <> None) fs with
  | Some f ->
    Alcotest.(check string) "rule survives in report" "D003" f.rule;
    Alcotest.(check (option string)) "reason recorded"
      (Some "reviewed: sorted before escaping") f.suppressed
  | None -> Alcotest.fail "suppressed finding missing from report"

let test_allow_missing_reason () =
  let fs = lint "lib/game/t.ml" "[@@@lint.allow \"D003\"]\nlet f t = Hashtbl.fold (fun k _ a -> k :: a) t []\n" in
  (* The invalid allow suppresses nothing: both the D003 and the audit
     finding surface. *)
  check_rules "D003 stays + audit fires" [ "A001"; "D003" ] fs

let test_allow_unknown_rule () =
  check_rules "unknown rule audited" [ "A001" ]
    (lint "lib/game/t.ml" "[@@@lint.allow \"Z999\" \"whatever\"]\nlet x = 1\n")

let test_allow_unused () =
  check_rules "unused allow audited" [ "A001" ]
    (lint "lib/game/t.ml" "[@@@lint.allow \"D001\" \"stale reason\"]\nlet x = 1\n")

(* {1 Golden --json report over a fixture tree} *)

let write_file path content =
  let oc = open_out path in
  output_string oc content;
  close_out oc

let with_fixture_tree f =
  let dir = Filename.temp_file "bn_lint_fixture" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let mkdir d = Unix.mkdir (Filename.concat dir d) 0o755 in
  mkdir "lib";
  mkdir "lib/demo";
  let w rel content = write_file (Filename.concat dir rel) content in
  w "dune-project" "(lang dune 3.0)\n";
  w "lib/demo/dune" "(library\n (name bn_obs)\n (libraries bn_util))\n";
  w "lib/demo/bad.ml" "let seed () = Random.self_init ()\nlet table = Hashtbl.create 8\n";
  w "lib/demo/ok.ml"
    "[@@@lint.allow \"D003\" \"reviewed: the result is sorted before it escapes\"]\n\n\
     let pairs t = List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) t [])\n";
  w "lib/demo/ok.mli" "val pairs : ('a, 'b) Hashtbl.t -> ('a * 'b) list\n";
  Fun.protect
    ~finally:(fun () -> ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir))))
    (fun () -> f dir)

let golden_json =
  {json|{
  "schema": "bn-lint/1",
  "summary": {
    "files": 3,
    "dune_files": 1,
    "unsuppressed": 4,
    "suppressed": 1,
    "by_rule": {"D001": 1, "P001": 1, "H001": 1, "H003": 1}
  },
  "findings": [
    { "rule": "H001", "severity": "warning", "file": "lib/demo/bad.ml", "line": 1, "col": 0, "message": "lib/ module without an .mli: exports are unreviewed", "allowed": false },
    { "rule": "D001", "severity": "error", "file": "lib/demo/bad.ml", "line": 1, "col": 14, "message": "use of Random.self_init: randomness must come from an explicit Bn_util.Prng seed", "allowed": false },
    { "rule": "P001", "severity": "error", "file": "lib/demo/bad.ml", "line": 2, "col": 0, "message": "top-level mutable state (Hashtbl.create) outside lib/util and lib/obs — thread it or use an Obs counter", "allowed": false },
    { "rule": "H003", "severity": "error", "file": "lib/demo/dune", "line": 2, "col": 0, "message": "bn_obs must sit below every in-tree library but depends on bn_util", "allowed": false },
    { "rule": "D003", "severity": "error", "file": "lib/demo/ok.ml", "line": 3, "col": 33, "message": "Hashtbl.fold traverses in bucket order; use Bn_util.Tbl.sorted_bindings (or keep the result from escaping)", "allowed": true, "reason": "reviewed: the result is sorted before it escapes" }
  ]
}
|json}

let test_golden_json () =
  with_fixture_tree (fun dir ->
      let report = L.run ~root:dir in
      Alcotest.(check string) "pinned --json report" golden_json (L.to_json report);
      Alcotest.(check int) "exit-worthy findings" 4 (List.length (L.unsuppressed report)))

(* Deleting the suppression attribute resurfaces the finding: the allow
   set is load-bearing, not decorative. *)
let test_deleted_suppression_resurfaces () =
  with_fixture_tree (fun dir ->
      write_file
        (Filename.concat dir "lib/demo/ok.ml")
        "let pairs t = List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) t [])\n";
      let report = L.run ~root:dir in
      let d003 =
        List.filter (fun (f : F.t) -> f.rule = "D003") (L.unsuppressed report)
      in
      match d003 with
      | [ f ] ->
        Alcotest.(check string) "right file" "lib/demo/ok.ml" f.file;
        Alcotest.(check int) "right line" 1 f.line
      | _ -> Alcotest.fail "expected exactly one unsuppressed D003")

(* {1 Whole-program analyses: effects and races over a fixture tree}

   A miniature repo exercising the cross-file machinery end to end:
   dune library wrappers, module aliases, the Prng/Pool/Soa/Obs
   conventions, and one planted instance of each E/R rule next to its
   clean twin. *)

let with_wp_tree ?(patch = fun _ -> ()) f =
  let dir = Filename.temp_file "bn_lint_wp" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let mkdir d = Unix.mkdir (Filename.concat dir d) 0o755 in
  List.iter mkdir [ "lib"; "lib/util"; "lib/obs"; "lib/agents"; "lib/game" ];
  let w rel content = write_file (Filename.concat dir rel) content in
  w "dune-project" "(lang dune 3.0)\n";
  w "lib/util/dune" "(library\n (name bn_util))\n";
  w "lib/obs/dune" "(library\n (name bn_obs))\n";
  w "lib/agents/dune" "(library\n (name bn_agents)\n (libraries bn_util))\n";
  w "lib/game/dune" "(library\n (name bn_game)\n (libraries bn_util bn_obs bn_agents))\n";
  w "lib/util/pool.ml"
    "let map_array f a = Array.map f a\nlet iter_grid ~shards f = for s = 0 to shards - 1 do f s done\n";
  w "lib/util/pool.mli"
    "val map_array : ('a -> 'b) -> 'a array -> 'b array\nval iter_grid : shards:int -> (int -> unit) -> unit\n";
  w "lib/util/prng.ml"
    "type t = { mutable s : int }\nlet create seed = { s = seed }\nlet split t i = { s = t.s + i }\nlet int t n = t.s mod n\n";
  w "lib/util/prng.mli"
    "type t\nval create : int -> t\nval split : t -> int -> t\nval int : t -> int -> int\n";
  w "lib/util/helpers.ml"
    "[@@@lint.allow \"D002\" \"fixture: the planted clock source the E rules must catch\"]\n\n\
     let now () = Unix.gettimeofday ()\n\
     let tally = Hashtbl.create 16\n\
     let bump k = Hashtbl.replace tally k 1\n\
     let pure x = x + 1\n";
  w "lib/util/helpers.mli"
    "val now : unit -> float\nval tally : (string, int) Hashtbl.t\nval bump : string -> unit\nval pure : int -> int\n";
  w "lib/obs/obs.ml"
    "type t = { mutable n : int }\n\
     let counter ?(kind = `Det) name = ignore kind; ignore name; { n = 0 }\n\
     let incr c = c.n <- c.n + 1\n";
  w "lib/obs/obs.mli"
    "type t\nval counter : ?kind:[ `Det | `Volatile ] -> string -> t\nval incr : t -> unit\n";
  w "lib/agents/soa.ml"
    "module F64 = struct\n\
    \  type t = float array\n\
    \  let set (c : t) i v = c.(i) <- v\n\
    \  let fill (c : t) v = Array.fill c 0 (Array.length c) v\n\
     end\n";
  w "lib/agents/soa.mli"
    "module F64 : sig\n\
    \  type t = float array\n\
    \  val set : t -> int -> float -> unit\n\
    \  val fill : t -> float -> unit\n\
     end\n";
  w "lib/game/kern.ml"
    "let c_steps = Obs.counter \"steps\"\n\n\
     let region x =\n\
    \  Obs.incr c_steps;\n\
    \  let t = Helpers.now () in\n\
    \  x +. t\n\n\
     let clean y = Helpers.pure y\n";
  w "lib/game/kern.mli" "val c_steps : Obs.t\nval region : float -> float\nval clean : int -> int\n";
  w "lib/game/sim.ml"
    "let step col base out shards =\n\
    \  Pool.iter_grid ~shards (fun s ->\n\
    \      let r = Prng.split base s in\n\
    \      let _ = Prng.int r 10 in\n\
    \      let _ = Prng.int base 10 in\n\
    \      Soa.F64.set col s 1.0;\n\
    \      Soa.F64.set col 0 2.0;\n\
    \      Helpers.bump \"x\";\n\
    \      out.(s) <- float_of_int s;\n\
    \      out.(0) <- 0.0)\n";
  w "lib/game/sim.mli" "val step : Soa.F64.t -> Prng.t -> float array -> int -> unit\n";
  patch (fun rel content -> w rel content);
  Fun.protect
    ~finally:(fun () -> ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir))))
    (fun () -> f dir)

let findings_of_rule rule report =
  List.filter (fun (f : F.t) -> f.rule = rule) (L.unsuppressed report)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let test_effects_rules () =
  with_wp_tree (fun dir ->
      let report = L.run ~root:dir in
      (match findings_of_rule "E001" report with
      | [ f ] ->
        Alcotest.(check string) "E001 fires in the kernel caller" "lib/game/kern.ml" f.file;
        Alcotest.(check bool) "E001 names the clock helper" true
          (contains f.message "lib/util/helpers.ml#now")
      | fs -> Alcotest.fail (Printf.sprintf "expected exactly one E001, got %d" (List.length fs)));
      match findings_of_rule "E002" report with
      | [ f ] ->
        Alcotest.(check string) "E002 fires on the Det region" "lib/game/kern.ml" f.file;
        Alcotest.(check bool) "E002 names the region" true
          (contains f.message "kern.ml#region")
      | fs -> Alcotest.fail (Printf.sprintf "expected exactly one E002, got %d" (List.length fs)))

let test_race_rules () =
  with_wp_tree (fun dir ->
      let report = L.run ~root:dir in
      let r001 = findings_of_rule "R001" report in
      (* Exactly two: the constant-index array write and the transitive
         global_mut helper; the [out.(s)] write is chunk-derived. *)
      Alcotest.(check int) "two R001" 2 (List.length r001);
      Alcotest.(check bool) "transitive helper named" true
        (List.exists
           (fun (f : F.t) -> contains f.message "helpers.ml#bump")
           r001);
      (match findings_of_rule "R002" report with
      | [ f ] ->
        Alcotest.(check int) "R002 on the captured draw, not the split one" 5 f.line
      | fs -> Alcotest.fail (Printf.sprintf "expected exactly one R002, got %d" (List.length fs)));
      match findings_of_rule "R003" report with
      | [ f ] -> Alcotest.(check int) "R003 on the constant-index column write" 7 f.line
      | fs -> Alcotest.fail (Printf.sprintf "expected exactly one R003, got %d" (List.length fs)))

let test_race_allow () =
  (* E/R findings merge into their file's batch before allows apply, so
     the same audited [@@@lint.allow] machinery covers them. *)
  with_wp_tree
    ~patch:(fun w ->
      w "lib/game/sim.ml"
        "[@@@lint.allow \"R001\" \"fixture: reduction reviewed, single writer per key\"]\n\
         [@@@lint.allow \"R002\" \"fixture: draw order intentionally shared\"]\n\
         [@@@lint.allow \"R003\" \"fixture: constant slot owned by shard 0\"]\n\n\
         let step col base out shards =\n\
        \  Pool.iter_grid ~shards (fun s ->\n\
        \      let r = Prng.split base s in\n\
        \      let _ = Prng.int r 10 in\n\
        \      let _ = Prng.int base 10 in\n\
        \      Soa.F64.set col s 1.0;\n\
        \      Soa.F64.set col 0 2.0;\n\
        \      Helpers.bump \"x\";\n\
        \      out.(s) <- float_of_int s;\n\
        \      out.(0) <- 0.0)\n")
    (fun dir ->
      let report = L.run ~root:dir in
      List.iter
        (fun rule ->
          Alcotest.(check int)
            (rule ^ " suppressed") 0
            (List.length (findings_of_rule rule report)))
        [ "R001"; "R002"; "R003"; "A001" ];
      let suppressed =
        List.filter
          (fun (f : F.t) -> f.suppressed <> None && f.file = "lib/game/sim.ml")
          report.findings
      in
      Alcotest.(check int) "all four race findings survive as audited" 4
        (List.length suppressed))

let test_wp_exports_stable () =
  with_wp_tree (fun dir ->
      let r1 = L.run ~root:dir and r2 = L.run ~root:dir in
      Alcotest.(check string) "callgraph byte-stable" (L.callgraph_json r1) (L.callgraph_json r2);
      Alcotest.(check string) "effects byte-stable" (L.effects_json r1) (L.effects_json r2);
      Alcotest.(check bool) "callgraph schema" true
        (contains (L.callgraph_json r1) "\"schema\": \"bn-callgraph/1\"");
      Alcotest.(check bool) "effects schema" true
        (contains (L.effects_json r1) "\"schema\": \"bn-effects/1\"");
      (* Cross-file resolution made it into the export: the kernel's call
         edge to the clock helper. *)
      Alcotest.(check bool) "edge resolved across files" true
        (contains (L.callgraph_json r1) "lib/util/helpers.ml#now"))

let test_invalid_root () =
  let missing = "/nonexistent/bn-lint-root" in
  Alcotest.check_raises "run raises" (L.Invalid_root missing) (fun () ->
      ignore (L.run ~root:missing));
  Alcotest.check_raises "parse_mls raises" (L.Invalid_root missing) (fun () ->
      ignore (L.parse_mls ~root:missing));
  (* The valid-root path still returns a report (exit-0 side of the
     driver contract). *)
  with_fixture_tree (fun dir -> ignore (L.run ~root:dir))

(* {1 The repo itself is lint-clean} *)

let test_repo_is_clean () =
  match L.find_root () with
  | None -> Alcotest.fail "no dune-project above the test runner"
  | Some root ->
    let report = L.run ~root in
    Alcotest.(check bool) "dune files checked" true (report.dune_files >= 15);
    Alcotest.(check bool) "scanned a real tree" true (report.files_scanned > 150);
    (match L.unsuppressed report with
    | [] -> ()
    | fs ->
      Alcotest.fail
        (String.concat "\n" ("repo has unsuppressed lint findings:" :: List.map F.to_string fs)));
    (* Every suppression is explicit and reasoned (A001 enforces the
       reason; this pins the audit trail shape). *)
    List.iter
      (fun (f : F.t) ->
        match f.suppressed with
        | Some reason -> Alcotest.(check bool) "reason non-empty" true (String.length reason > 0)
        | None -> ())
      report.findings

let suite =
  [
    Alcotest.test_case "D001 randomness" `Quick test_d001;
    Alcotest.test_case "D002 wall clock" `Quick test_d002;
    Alcotest.test_case "D003 hashtbl order" `Quick test_d003;
    Alcotest.test_case "D004/D005 marshal, magic" `Quick test_d004_d005;
    Alcotest.test_case "P001 top-level state" `Quick test_p001;
    Alcotest.test_case "P002 domain confinement" `Quick test_p002;
    Alcotest.test_case "P003 stdout discipline" `Quick test_p003;
    Alcotest.test_case "P004 Bigarray confinement" `Quick test_p004;
    Alcotest.test_case "P005 Gc confinement" `Quick test_p005;
    Alcotest.test_case "H002 shadowing opens" `Quick test_h002;
    Alcotest.test_case "E000 parse failure" `Quick test_e000;
    Alcotest.test_case "allow: suppresses with reason" `Quick test_allow_suppresses;
    Alcotest.test_case "allow: missing reason audited" `Quick test_allow_missing_reason;
    Alcotest.test_case "allow: unknown rule audited" `Quick test_allow_unknown_rule;
    Alcotest.test_case "allow: unused audited" `Quick test_allow_unused;
    Alcotest.test_case "E001/E002 effect inference" `Quick test_effects_rules;
    Alcotest.test_case "R001/R002/R003 race detection" `Quick test_race_rules;
    Alcotest.test_case "race findings are suppressible and audited" `Quick test_race_allow;
    Alcotest.test_case "callgraph/effects exports byte-stable" `Quick test_wp_exports_stable;
    Alcotest.test_case "invalid --root raises" `Quick test_invalid_root;
    Alcotest.test_case "golden --json fixture report" `Quick test_golden_json;
    Alcotest.test_case "deleted suppression resurfaces" `Quick test_deleted_suppression_resurfaces;
    Alcotest.test_case "repo is lint-clean" `Quick test_repo_is_clean;
  ]
