(* Smoke tests: every experiment must run to completion (stdout is diverted
   to /dev/null so the test output stays readable). *)

let with_silenced_stdout f =
  flush stdout;
  let saved = Unix.dup Unix.stdout in
  let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  Unix.dup2 devnull Unix.stdout;
  Unix.close devnull;
  Fun.protect
    ~finally:(fun () ->
      flush stdout;
      Unix.dup2 saved Unix.stdout;
      Unix.close saved)
    f

let smoke ((name, _title, run) : Bn_experiments.Experiments.entry) =
  Alcotest.test_case (Printf.sprintf "%s runs" name) `Slow (fun () ->
      with_silenced_stdout (fun () -> run ()))

let test_registry_ids () =
  let ids = List.map (fun (n, _, _) -> n) Bn_experiments.Experiments.all in
  Alcotest.(check int) "17 experiments" 17 (List.length ids);
  Alcotest.(check int) "ids unique" 17 (List.length (List.sort_uniq compare ids));
  Alcotest.(check bool) "find is case-insensitive" true
    (Bn_experiments.Experiments.find "e3" <> None);
  Alcotest.(check bool) "unknown id" true (Bn_experiments.Experiments.find "E99" = None)

let suite =
  Alcotest.test_case "registry" `Quick test_registry_ids
  :: List.map smoke Bn_experiments.Experiments.all
