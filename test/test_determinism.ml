(* Golden-output determinism: rendering an experiment with a parallel
   domain budget must produce the byte-exact transcript of the serial run.
   This is the contract that lets run_all parallelize paper tables without
   ever silently reordering or perturbing them. E1 exercises the parallel
   coalition enumeration in Robust, E5 the split-stream (n,k,t) grid
   sweep, E13 the Monte Carlo loop over Pool.iter_grid, and E17 the
   sharded SoA engines (batched cross-shard exchange + split streams). *)

let render ~jobs id =
  match Bn_experiments.Experiments.render ~jobs id with
  | Some transcript -> transcript
  | None -> Alcotest.failf "unknown experiment %s" id

let check_jobs_invariant id () =
  let serial = render ~jobs:1 id in
  let parallel = render ~jobs:4 id in
  Alcotest.(check bool)
    (id ^ " transcript is non-trivial")
    true
    (String.length serial > 100);
  Alcotest.(check string) (id ^ " identical at jobs=1 and jobs=4") serial parallel

let check_render_matches_run_all () =
  (* run_all is exactly the concatenation of the individual renders, so the
     full transcript inherits the per-experiment guarantee. *)
  let ids = List.map (fun (n, _, _) -> n) Bn_experiments.Experiments.all in
  let one = render ~jobs:2 (List.hd ids) in
  Alcotest.(check bool) "render starts with the banner" true
    (String.length one > 8 && String.sub one 0 8 = "########")

let suite =
  [
    Alcotest.test_case "E1 golden: jobs=1 = jobs=4" `Slow (check_jobs_invariant "E1");
    Alcotest.test_case "E5 golden: jobs=1 = jobs=4" `Slow (check_jobs_invariant "E5");
    Alcotest.test_case "E13 golden: jobs=1 = jobs=4" `Slow (check_jobs_invariant "E13");
    Alcotest.test_case "E17 golden: jobs=1 = jobs=4" `Slow (check_jobs_invariant "E17");
    Alcotest.test_case "render banner" `Quick check_render_matches_run_all;
  ]
