module B = Beyond_nash
module Soa = B.Soa

(* {1 Partition} *)

let test_partition_covers () =
  let p = Soa.partition ~n:10 ~shards:3 in
  Alcotest.(check int) "n" 10 (Soa.n p);
  Alcotest.(check int) "shards" 3 (Soa.shards p);
  let covered = Array.make 10 0 in
  for s = 0 to Soa.shards p - 1 do
    let lo, hi = Soa.bounds p s in
    Alcotest.(check bool) "ordered" true (lo <= hi);
    for i = lo to hi - 1 do
      covered.(i) <- covered.(i) + 1
    done
  done;
  Array.iteri
    (fun i c -> Alcotest.(check int) (Printf.sprintf "agent %d covered once" i) 1 c)
    covered

let test_partition_clamps () =
  let p = Soa.partition ~n:3 ~shards:64 in
  Alcotest.(check bool) "shards <= n" true (Soa.shards p <= 3);
  let p0 = Soa.partition ~n:0 ~shards:4 in
  Alcotest.(check int) "empty population still has a shard" 1 (Soa.shards p0)

let partition_property =
  QCheck.Test.make ~count:200 ~name:"soa: partition is a balanced disjoint cover"
    QCheck.(pair (int_range 0 500) (int_range 1 80))
    (fun (n, shards) ->
      let p = Soa.partition ~n ~shards in
      let sizes =
        List.init (Soa.shards p) (fun s ->
            let lo, hi = Soa.bounds p s in
            hi - lo)
      in
      let total = List.fold_left ( + ) 0 sizes in
      let mn = List.fold_left min max_int sizes and mx = List.fold_left max 0 sizes in
      (* cover, balance, and shard_of consistency *)
      total = n
      && mx - mn <= 1
      && List.for_all
           (fun s ->
             let lo, hi = Soa.bounds p s in
             let ok = ref true in
             for i = lo to hi - 1 do
               if Soa.shard_of p i <> s then ok := false
             done;
             !ok)
           (List.init (Soa.shards p) Fun.id))

(* {1 Columns} *)

let test_columns_roundtrip () =
  let f = Soa.F64.create 5 and i32 = Soa.I32.create 5 and i8 = Soa.I8.create 5 in
  Alcotest.(check int) "f64 len" 5 (Soa.F64.length f);
  Alcotest.(check int) "i32 len" 5 (Soa.I32.length i32);
  Alcotest.(check int) "i8 len" 5 (Soa.I8.length i8);
  Alcotest.(check (float 0.0)) "zero-filled" 0.0 (Soa.F64.get f 3);
  Alcotest.(check int) "zero-filled" 0 (Soa.I32.get i32 3);
  Soa.F64.set f 2 3.25;
  Soa.I32.set i32 2 (-7);
  Soa.I8.set i8 2 2;
  Alcotest.(check (float 0.0)) "f64 roundtrip" 3.25 (Soa.F64.get f 2);
  Alcotest.(check int) "i32 roundtrip (signed)" (-7) (Soa.I32.get i32 2);
  Alcotest.(check int) "i8 roundtrip" 2 (Soa.I8.get i8 2);
  Soa.I32.fill i32 9;
  Alcotest.(check int) "fill" 9 (Soa.I32.get i32 4);
  Alcotest.(check (array (float 0.0))) "to_array"
    [| 0.0; 0.0; 3.25; 0.0; 0.0 |] (Soa.F64.to_array f)

(* {1 Exchange} *)

let test_exchange_flush_order () =
  (* Replay must be (src, dst, posting order) regardless of the
     interleaving that posted the events. *)
  let ex = Soa.Exchange.create ~shards:3 in
  Soa.Exchange.post ex ~src:2 ~dst:0 20 0;
  Soa.Exchange.post ex ~src:0 ~dst:1 1 10;
  Soa.Exchange.post ex ~src:0 ~dst:0 0 0;
  Soa.Exchange.post ex ~src:0 ~dst:1 2 11;
  Soa.Exchange.post ex ~src:1 ~dst:2 12 21;
  Alcotest.(check int) "pending" 5 (Soa.Exchange.pending ex);
  let log = ref [] in
  let count =
    Soa.Exchange.flush ex (fun ~src ~dst a b -> log := (src, dst, a, b) :: !log)
  in
  Alcotest.(check int) "replayed" 5 count;
  Alcotest.(check (list (pair (pair int int) (pair int int))))
    "lexicographic (src, dst), posting order within"
    [ ((0, 0), (0, 0)); ((0, 1), (1, 10)); ((0, 1), (2, 11)); ((1, 2), (12, 21)); ((2, 0), (20, 0)) ]
    (List.rev_map (fun (s, d, a, b) -> ((s, d), (a, b))) !log);
  Alcotest.(check int) "cleared" 0 (Soa.Exchange.pending ex);
  Alcotest.(check int) "second flush empty" 0 (Soa.Exchange.flush ex (fun ~src:_ ~dst:_ _ _ -> ()))

let exchange_property =
  QCheck.Test.make ~count:100 ~name:"soa: exchange replays every event exactly once"
    QCheck.(list_of_size Gen.(int_range 0 60) (pair (int_range 0 3) (int_range 0 3)))
    (fun routes ->
      let ex = Soa.Exchange.create ~shards:4 in
      List.iteri (fun i (src, dst) -> Soa.Exchange.post ex ~src ~dst i (i * 2)) routes;
      let seen = ref [] in
      let count = Soa.Exchange.flush ex (fun ~src:_ ~dst:_ a _ -> seen := a :: !seen) in
      count = List.length routes
      && List.sort compare !seen = List.init (List.length routes) Fun.id)

let suite =
  [
    Alcotest.test_case "partition: covers" `Quick test_partition_covers;
    Alcotest.test_case "partition: clamps" `Quick test_partition_clamps;
    QCheck_alcotest.to_alcotest partition_property;
    Alcotest.test_case "columns: roundtrip" `Quick test_columns_roundtrip;
    Alcotest.test_case "exchange: flush order" `Quick test_exchange_flush_order;
    QCheck_alcotest.to_alcotest exchange_property;
  ]
